//! The authorization store: meta-relations, `COMPARISON`, `PERMISSION`.
//!
//! [`AuthStore`] owns everything Section 3 adds to the database:
//!
//! * one [`MetaRelation`] `R'` per base relation `R`, holding the stored
//!   meta-tuples of every defined view;
//! * the `COMPARISON` relation (view-scoped non-equality comparisons) —
//!   held both as rows for display and attached tuple-locally to the
//!   meta-tuples that mention each variable;
//! * the `PERMISSION` relation (user, view);
//! * the stored self-join combinations of refinement R3 ("once
//!   generated, they should be stored with the original view
//!   definitions, until these definitions are modified" — the store
//!   regenerates them whenever a view is defined or dropped).
//!
//! Views are registered from their surface statements via
//! [`AuthStore::define_view`]; the §3 normalization and meta-tuple
//! encoding are applied automatically, fulfilling the paper's §6 promise
//! that "the system will insert automatically the appropriate
//! meta-tuples into the meta-relations", keeping the notation fully
//! transparent to users.

use crate::constraint::{ConstraintAtom, ConstraintSet, Rhs};
use crate::error::{CoreError, CoreResult};
use crate::metarel::{render_table, MetaRelation};
use crate::metatuple::{MetaCell, MetaTuple, TupleId, VarId};
use crate::selfjoin;
use motro_mat::{Dep, DepSet, Touched};
use motro_rel::{DbSchema, Relation};
use motro_views::{normalize, CompRhs, ConjunctiveQuery, NormalizedView, VarTerm};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Bookkeeping for one conjunctive branch of a view. A plain
/// conjunctive view has exactly one branch; a *disjunctive* view (the
/// Section 6 extension: "the current methods can be extended to handle
/// views with disjunctions") stores one branch per disjunct, each with
/// its own meta-tuples and variables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BranchEntry {
    /// The branch's surface statement.
    pub definition: ConjunctiveQuery,
    /// Relations in which this branch stores meta-tuples.
    pub relations: BTreeSet<String>,
    /// Ids of the branch's stored meta-tuples.
    pub tuple_ids: BTreeSet<TupleId>,
    /// The branch's (globally renumbered) comparison atoms.
    pub comparisons: Vec<ConstraintAtom>,
}

/// Bookkeeping for one defined view: its conjunctive branches.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ViewEntry {
    /// The branches (one for a plain conjunctive view).
    pub branches: Vec<BranchEntry>,
}

impl ViewEntry {
    /// The first branch's statement (the whole statement for plain
    /// conjunctive views).
    pub fn definition(&self) -> &ConjunctiveQuery {
        &self.branches[0].definition
    }

    /// Every meta-tuple id across all branches.
    pub fn all_tuple_ids(&self) -> BTreeSet<TupleId> {
        self.branches
            .iter()
            .flat_map(|b| b.tuple_ids.iter().copied())
            .collect()
    }
}

/// The meta-relations, `COMPARISON`, `PERMISSION`, and stored self-joins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AuthStore {
    scheme: DbSchema,
    views: BTreeMap<String, ViewEntry>,
    meta: BTreeMap<String, MetaRelation>,
    selfjoins: BTreeMap<String, Vec<MetaTuple>>,
    aggregate_views: BTreeMap<String, motro_views::AggregateQuery>,
    permissions: BTreeSet<(String, String)>,
    group_permissions: BTreeSet<(String, String)>,
    membership: BTreeMap<String, BTreeSet<String>>,
    var_home: BTreeMap<VarId, BTreeSet<TupleId>>,
    next_tuple: TupleId,
    next_var: VarId,
    selfjoin_rounds: usize,
    /// The authorization epoch: a monotone counter bumped by every
    /// mutation that can change an authorization decision (view
    /// definitions, grants, revocations, group membership, refinement
    /// settings). A mask computed for `(user, plan)` is a pure function
    /// of the store state, so it stays valid exactly while the epoch
    /// does not move — the invariant external mask caches rely on.
    /// Absent in pre-epoch serialized states, hence the default.
    #[serde(default)]
    epoch: u64,
    /// The authorization objects changed since the last
    /// [`AuthStore::take_touched`]: each mutation reports the precise
    /// users/groups/views/relations it affected, so external mask
    /// caches can invalidate only the entries derived from them.
    /// Direct [`AuthStore::bump_epoch`] calls degrade the batch to
    /// [`Touched::All`] (the old invalidate-everything behaviour).
    /// Runtime bookkeeping, never serialized.
    #[serde(skip)]
    touched: Touched,
}

impl AuthStore {
    /// An empty store over `scheme`: one empty meta-relation per base
    /// relation.
    pub fn new(scheme: DbSchema) -> Self {
        let meta = scheme
            .iter()
            .map(|(n, d)| (n.clone(), MetaRelation::new(n, d.schema.clone())))
            .collect();
        AuthStore {
            scheme,
            views: BTreeMap::new(),
            meta,
            selfjoins: BTreeMap::new(),
            aggregate_views: BTreeMap::new(),
            permissions: BTreeSet::new(),
            group_permissions: BTreeSet::new(),
            membership: BTreeMap::new(),
            var_home: BTreeMap::new(),
            next_tuple: 1,
            next_var: 1,
            selfjoin_rounds: 1,
            epoch: 0,
            touched: Touched::default(),
        }
    }

    /// The current authorization epoch. Monotonically increasing; any
    /// change means previously computed masks may no longer reflect the
    /// store and must be recomputed.
    pub fn auth_epoch(&self) -> u64 {
        self.epoch
    }

    /// Advance the authorization epoch, invalidating externally cached
    /// masks. Every mutating method of the store calls this itself;
    /// call it directly only after out-of-band changes that affect
    /// authorization decisions (e.g. swapping the refinement
    /// configuration an engine will run with). Returns the new epoch.
    ///
    /// A direct call reports [`Touched::All`]: the caller is telling us
    /// something out-of-band changed, so the only safe answer is to
    /// invalidate every cached mask. The store's own mutators instead
    /// go through [`AuthStore::bump_epoch_touching`] with a precise
    /// touched-set.
    pub fn bump_epoch(&mut self) -> u64 {
        self.touched.record_all();
        self.epoch += 1;
        self.epoch
    }

    /// Advance the epoch while reporting precisely which authorization
    /// objects the mutation changed.
    fn bump_epoch_touching(&mut self, deps: impl IntoIterator<Item = Dep>) -> u64 {
        self.touched.record(deps);
        self.epoch += 1;
        self.epoch
    }

    /// Drain the touched-set accumulated since the previous call (or
    /// since construction). Pairs with [`AuthStore::auth_epoch`]: the
    /// returned batch describes every mutation up to the current epoch,
    /// so a cache that invalidates the batch at that epoch is exactly
    /// as fresh as one that recomputed everything.
    pub fn take_touched(&mut self) -> Touched {
        self.touched.take()
    }

    /// The dependency provenance of a mask computed *now* for `user`
    /// over a plan referencing `query_rels`: every authorization object
    /// the pipeline reads while deriving it. A mask cache stores this
    /// alongside the entry and drops the entry whenever a mutation's
    /// touched-set intersects it.
    ///
    /// The set contains the principal itself, each group the principal
    /// currently belongs to (group grants reach the mask through
    /// [`AuthStore::permitted_views`]), each relation the plan ranges
    /// over (view DDL reports the relations its branches store
    /// meta-tuples in), and each granted view with at least one branch
    /// usable for the plan (the Section 5 in-their-entirety pruning:
    /// only those views' meta-tuples can appear among the candidates).
    /// View-over-view chains need no special casing — a stored view is
    /// always flattened to base relations at definition time, so the
    /// relation footprint already names everything the mask can see.
    pub fn mask_dependencies(&self, user: &str, query_rels: &BTreeSet<String>) -> DepSet {
        let mut deps = DepSet::new();
        deps.insert(Dep::user(user));
        if let Some(group) = user.strip_prefix("group:") {
            // A `group:G` principal reads G's grants directly.
            deps.insert(Dep::group(group));
        }
        for g in self.groups_of(user) {
            deps.insert(Dep::group(g));
        }
        for rel in query_rels {
            deps.insert(Dep::relation(rel));
        }
        for vname in self.permitted_views(user) {
            if let Some(entry) = self.views.get(vname) {
                if entry
                    .branches
                    .iter()
                    .any(|b| b.relations.iter().all(|r| query_rels.contains(r)))
                {
                    deps.insert(Dep::view(vname));
                }
            }
        }
        deps
    }

    /// Set how many self-join combination rounds refinement R3 runs
    /// (1 = pairs, the paper's formulation and the default; higher
    /// values also build triples, quadruples, ...). Regenerates the
    /// stored combinations.
    pub fn set_selfjoin_rounds(&mut self, rounds: usize) {
        self.selfjoin_rounds = rounds;
        self.regenerate_selfjoins();
        self.bump_epoch();
    }

    /// The database scheme the store was built over.
    pub fn scheme(&self) -> &DbSchema {
        &self.scheme
    }

    /// Define a view from its surface statement (must be named).
    ///
    /// Normalizes per Section 3, renumbers the view's variables into the
    /// store's global space, inserts the meta-tuples and `COMPARISON`
    /// entries, and regenerates stored self-joins.
    pub fn define_view(&mut self, q: &ConjunctiveQuery) -> CoreResult<()> {
        let name = q
            .name
            .clone()
            .ok_or_else(|| CoreError::Internal("view statement must be named".to_owned()))?;
        self.define_view_union(&name, std::slice::from_ref(q))
    }

    /// Define a *disjunctive* view as a union of conjunctive branches
    /// (the Section 6 extension). Each branch is normalized and stored
    /// independently under the same view name; masks take the union of
    /// the branches naturally. A query may use any branch that is
    /// defined entirely within the query's relations.
    pub fn define_view_union(
        &mut self,
        name: &str,
        branches: &[ConjunctiveQuery],
    ) -> CoreResult<()> {
        if self.views.contains_key(name) {
            return Err(CoreError::DuplicateView(name.to_owned()));
        }
        if branches.is_empty() {
            return Err(CoreError::Internal(
                "a view needs at least one branch".to_owned(),
            ));
        }
        let mut entries = Vec::with_capacity(branches.len());
        for q in branches {
            let nv = normalize(q, &self.scheme)?;
            entries.push(self.install_normalized(name, q.clone(), &nv)?);
        }
        let mut deps = vec![Dep::view(name)];
        for e in &entries {
            deps.extend(e.relations.iter().map(Dep::relation));
        }
        self.views
            .insert(name.to_owned(), ViewEntry { branches: entries });
        self.regenerate_selfjoins();
        self.bump_epoch_touching(deps);
        Ok(())
    }

    fn install_normalized(
        &mut self,
        name: &str,
        definition: ConjunctiveQuery,
        nv: &NormalizedView,
    ) -> CoreResult<BranchEntry> {
        // Renumber the view's variables into the global space.
        let mut var_map: BTreeMap<VarId, VarId> = BTreeMap::new();
        let mut global = |local: VarId, next: &mut VarId| -> VarId {
            *var_map.entry(local).or_insert_with(|| {
                let g = *next;
                *next += 1;
                g
            })
        };
        let mut next_var = self.next_var;

        // Pre-pass: assign global ids to cell variables in cell order so
        // the stored numbering matches the paper's x₁, x₂, … display.
        for atom in &nv.atoms {
            for t in &atom.terms {
                if let VarTerm::Var(x) = t {
                    global(*x, &mut next_var);
                }
            }
        }

        let comparisons: Vec<ConstraintAtom> = nv
            .comparisons
            .iter()
            .map(|c| ConstraintAtom {
                lhs: global(c.lhs, &mut next_var),
                op: c.op,
                rhs: match &c.rhs {
                    CompRhs::Var(y) => Rhs::Var(global(*y, &mut next_var)),
                    CompRhs::Const(v) => Rhs::Const(v.clone()),
                },
            })
            .collect();

        let mut tuple_ids = BTreeSet::new();
        let mut relations = BTreeSet::new();
        let mut new_tuples: Vec<(String, MetaTuple)> = Vec::new();
        for atom in &nv.atoms {
            let id = self.next_tuple;
            self.next_tuple += 1;
            let cells: Vec<MetaCell> = atom
                .terms
                .iter()
                .zip(&atom.starred)
                .map(|(t, s)| match t {
                    VarTerm::Const(v) => MetaCell::constant(v.clone(), *s),
                    VarTerm::Var(x) => MetaCell::var(global(*x, &mut next_var), *s),
                    VarTerm::Anon => {
                        if *s {
                            MetaCell::star()
                        } else {
                            MetaCell::blank()
                        }
                    }
                })
                .collect();
            let cell_vars: BTreeSet<VarId> = cells.iter().filter_map(MetaCell::as_var).collect();
            // Attach the comparison atoms that mention this tuple's
            // variables.
            let local_atoms: Vec<ConstraintAtom> = comparisons
                .iter()
                .filter(|a| a.vars().iter().any(|x| cell_vars.contains(x)))
                .cloned()
                .collect();
            let tuple = MetaTuple::new(name, id, cells, ConstraintSet::new(local_atoms));
            for x in &cell_vars {
                self.var_home.entry(*x).or_default().insert(id);
            }
            tuple_ids.insert(id);
            relations.insert(atom.rel.clone());
            new_tuples.push((atom.rel.clone(), tuple));
        }
        self.next_var = next_var;

        for (rel, tuple) in new_tuples {
            self.meta
                .get_mut(&rel)
                .ok_or_else(|| CoreError::Internal(format!("no meta-relation for {rel}")))?
                .tuples
                .push(tuple);
        }
        Ok(BranchEntry {
            definition,
            relations,
            tuple_ids,
            comparisons,
        })
    }

    /// Drop a view: its meta-tuples, comparisons, grants, and the
    /// self-joins that involved it.
    pub fn drop_view(&mut self, name: &str) -> CoreResult<()> {
        let entry = self
            .views
            .remove(name)
            .ok_or_else(|| CoreError::UnknownView(name.to_owned()))?;
        let ids = entry.all_tuple_ids();
        for mr in self.meta.values_mut() {
            mr.remove_covering(&ids);
        }
        for homes in self.var_home.values_mut() {
            homes.retain(|id| !ids.contains(id));
        }
        self.var_home.retain(|_, homes| !homes.is_empty());
        self.permissions.retain(|(_, v)| v != name);
        self.group_permissions.retain(|(_, v)| v != name);
        self.regenerate_selfjoins();
        let mut deps = vec![Dep::view(name)];
        for b in &entry.branches {
            deps.extend(b.relations.iter().map(Dep::relation));
        }
        self.bump_epoch_touching(deps);
        Ok(())
    }

    fn regenerate_selfjoins(&mut self) {
        self.selfjoins.clear();
        for (rel, mr) in &self.meta {
            let key = self.scheme.relation(rel).ok().and_then(|d| d.key.clone());
            let joins = selfjoin::self_joins(&mr.tuples, key.as_deref(), self.selfjoin_rounds);
            if !joins.is_empty() {
                self.selfjoins.insert(rel.clone(), joins);
            }
        }
    }

    /// Define an *aggregate view* (the Section 6 extension): grants the
    /// grouped aggregate without any row-level access. The name shares
    /// the view namespace.
    pub fn define_aggregate_view(&mut self, q: &motro_views::AggregateQuery) -> CoreResult<()> {
        let name = crate::aggregate::validate_aggregate_view(q, &self.scheme)?;
        if self.views.contains_key(&name) || self.aggregate_views.contains_key(&name) {
            return Err(CoreError::DuplicateView(name));
        }
        self.bump_epoch_touching([Dep::view(&name)]);
        self.aggregate_views.insert(name, q.clone());
        Ok(())
    }

    /// Look up an aggregate view definition.
    pub fn aggregate_view(&self, name: &str) -> Option<&motro_views::AggregateQuery> {
        self.aggregate_views.get(name)
    }

    /// Drop an aggregate view and its grants.
    pub fn drop_aggregate_view(&mut self, name: &str) -> CoreResult<()> {
        if self.aggregate_views.remove(name).is_none() {
            return Err(CoreError::UnknownView(name.to_owned()));
        }
        self.permissions.retain(|(_, v)| v != name);
        self.group_permissions.retain(|(_, v)| v != name);
        self.bump_epoch_touching([Dep::view(name)]);
        Ok(())
    }

    /// Grant `user` permission to access `view` (idempotent; the
    /// `permit V to U` statement). Accepts row views and aggregate
    /// views.
    pub fn permit(&mut self, view: &str, user: &str) -> CoreResult<()> {
        if !self.views.contains_key(view) && !self.aggregate_views.contains_key(view) {
            return Err(CoreError::UnknownView(view.to_owned()));
        }
        self.permissions.insert((user.to_owned(), view.to_owned()));
        self.bump_epoch_touching(Self::principal_deps(user));
        Ok(())
    }

    /// Revoke a grant.
    pub fn revoke(&mut self, view: &str, user: &str) -> CoreResult<()> {
        if !self.permissions.remove(&(user.to_owned(), view.to_owned())) {
            return Err(CoreError::UnknownGrant {
                user: user.to_owned(),
                view: view.to_owned(),
            });
        }
        self.bump_epoch_touching(Self::principal_deps(user));
        Ok(())
    }

    /// The touched-set of a grant change for a principal: the principal
    /// itself, plus the group when the name uses the `group:G`
    /// convention (such a row is read through the group's grants).
    fn principal_deps(user: &str) -> Vec<Dep> {
        let mut deps = vec![Dep::user(user)];
        if let Some(group) = user.strip_prefix("group:") {
            deps.push(Dep::group(group));
        }
        deps
    }

    /// Views granted to `user` — directly or through any group the user
    /// belongs to — in name order.
    ///
    /// A principal of the form `group:G` (the same prefix convention the
    /// `PERMISSION` display table uses) names the group itself: the
    /// result is exactly the views granted to `G`, letting callers act
    /// *as* a group principal (the server binds sessions this way).
    pub fn permitted_views(&self, user: &str) -> Vec<&str> {
        if let Some(group) = user.strip_prefix("group:") {
            return self
                .group_permissions
                .iter()
                .filter(|(g, _)| g == group)
                .map(|(_, v)| v.as_str())
                .collect();
        }
        let mut out: BTreeSet<&str> = self
            .permissions
            .iter()
            .filter(|(u, _)| u == user)
            .map(|(_, v)| v.as_str())
            .collect();
        if let Some(groups) = self.membership.get(user) {
            for g in groups {
                out.extend(
                    self.group_permissions
                        .iter()
                        .filter(|(gg, _)| gg == g)
                        .map(|(_, v)| v.as_str()),
                );
            }
        }
        out.into_iter().collect()
    }

    /// Grant a view to a *group* (every member inherits it).
    pub fn permit_group(&mut self, view: &str, group: &str) -> CoreResult<()> {
        if !self.views.contains_key(view) && !self.aggregate_views.contains_key(view) {
            return Err(CoreError::UnknownView(view.to_owned()));
        }
        self.group_permissions
            .insert((group.to_owned(), view.to_owned()));
        self.bump_epoch_touching([Dep::group(group)]);
        Ok(())
    }

    /// Revoke a group grant.
    pub fn revoke_group(&mut self, view: &str, group: &str) -> CoreResult<()> {
        if !self
            .group_permissions
            .remove(&(group.to_owned(), view.to_owned()))
        {
            return Err(CoreError::UnknownGrant {
                user: format!("group {group}"),
                view: view.to_owned(),
            });
        }
        self.bump_epoch_touching([Dep::group(group)]);
        Ok(())
    }

    /// Add `user` to `group`. Membership changes the user's permission
    /// set, so this advances the authorization epoch like any grant.
    /// Only the joining user's masks are touched: other members'
    /// grants are unchanged, and the user's future masks pick up the
    /// group dependency when they are recomputed.
    pub fn add_member(&mut self, group: &str, user: &str) {
        self.membership
            .entry(user.to_owned())
            .or_default()
            .insert(group.to_owned());
        self.bump_epoch_touching([Dep::user(user)]);
    }

    /// Remove `user` from `group`. Returns whether the membership
    /// existed (and, if so, advances the authorization epoch).
    pub fn remove_member(&mut self, group: &str, user: &str) -> bool {
        let removed = match self.membership.get_mut(user) {
            Some(gs) => {
                let removed = gs.remove(group);
                if gs.is_empty() {
                    self.membership.remove(user);
                }
                removed
            }
            None => false,
        };
        if removed {
            self.bump_epoch_touching([Dep::user(user)]);
        }
        removed
    }

    /// The groups `user` belongs to.
    pub fn groups_of(&self, user: &str) -> Vec<&str> {
        self.membership
            .get(user)
            .map(|gs| gs.iter().map(String::as_str).collect())
            .unwrap_or_default()
    }

    /// All users with at least one grant.
    pub fn users(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self.permissions.iter().map(|(u, _)| u.as_str()).collect();
        out.dedup();
        out
    }

    /// The defined view names.
    pub fn view_names(&self) -> Vec<&str> {
        self.views.keys().map(String::as_str).collect()
    }

    /// Look up a view entry.
    pub fn view(&self, name: &str) -> CoreResult<&ViewEntry> {
        self.views
            .get(name)
            .ok_or_else(|| CoreError::UnknownView(name.to_owned()))
    }

    /// The meta-relation of `rel`.
    pub fn meta_relation(&self, rel: &str) -> CoreResult<&MetaRelation> {
        self.meta
            .get(rel)
            .ok_or_else(|| CoreError::Internal(format!("no meta-relation for {rel}")))
    }

    /// Stored self-join combinations for `rel` (may be empty).
    pub fn self_joins(&self, rel: &str) -> &[MetaTuple] {
        self.selfjoins.get(rel).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The candidate meta-tuples for one occurrence of `rel` in a query
    /// by `user` whose plan references `query_rels`.
    ///
    /// Implements the pruning of Section 5: "pruned to include only
    /// tuples of views that [the user] is permitted to access, and that
    /// are defined in these relations **in their entirety**" — a view is
    /// usable only when every relation it stores meta-tuples in appears
    /// in the query. Stored self-joins qualify when *all* their source
    /// views are usable.
    pub fn candidates(
        &self,
        user: &str,
        rel: &str,
        query_rels: &BTreeSet<String>,
    ) -> Vec<MetaTuple> {
        // Usable meta-tuples: those of a *branch* (of a granted view)
        // whose relations all appear in the query. Working at the
        // tuple-id level makes self-join combinations (whose covers are
        // unions of stored ids) check uniformly.
        let mut usable_ids: BTreeSet<TupleId> = BTreeSet::new();
        for vname in self.permitted_views(user) {
            if let Some(entry) = self.views.get(vname) {
                for b in &entry.branches {
                    if b.relations.iter().all(|r| query_rels.contains(r)) {
                        usable_ids.extend(b.tuple_ids.iter().copied());
                    }
                }
            }
        }
        let mut out: Vec<MetaTuple> = Vec::new();
        if let Some(mr) = self.meta.get(rel) {
            for t in &mr.tuples {
                if t.covers.is_subset(&usable_ids) {
                    out.push(t.clone());
                }
            }
        }
        for t in self.self_joins(rel) {
            if t.covers.is_subset(&usable_ids) {
                out.push(t.clone());
            }
        }
        out
    }

    /// Closure test (the theorem's pruning): every variable the tuple
    /// mentions must have its *home* meta-tuples covered, i.e. the tuple
    /// "does not contain references to other meta-tuples".
    pub fn is_closed(&self, t: &MetaTuple) -> bool {
        t.all_vars().iter().all(|x| {
            self.var_home
                .get(x)
                .map(|home| home.is_subset(&t.covers))
                .unwrap_or(true)
        })
    }

    /// The home meta-tuples of a variable (for diagnostics).
    pub fn var_home(&self, x: VarId) -> Option<&BTreeSet<TupleId>> {
        self.var_home.get(&x)
    }

    /// Render `R'` (optionally atop the actual rows of `R`), Figure 1
    /// style.
    pub fn meta_table(&self, rel: &str, actual: Option<&Relation>) -> CoreResult<String> {
        Ok(self.meta_relation(rel)?.to_table(actual))
    }

    /// Render the `COMPARISON` relation.
    pub fn comparison_table(&self) -> String {
        let headers = ["VIEW", "X", "COMPARE", "Y"].map(str::to_owned).to_vec();
        let mut rows = Vec::new();
        for (view, e) in &self.views {
            for b in &e.branches {
                for a in &b.comparisons {
                    rows.push(vec![
                        view.clone(),
                        format!("x{}", a.lhs),
                        a.op.to_string(),
                        a.rhs.to_string(),
                    ]);
                }
            }
        }
        render_table(&headers, &rows)
    }

    /// Render the `PERMISSION` relation (group grants shown with a
    /// `group:` prefix).
    pub fn permission_table(&self) -> String {
        let headers = ["USER", "VIEW"].map(str::to_owned).to_vec();
        let mut rows: Vec<Vec<String>> = self
            .permissions
            .iter()
            .map(|(u, v)| vec![u.clone(), v.clone()])
            .collect();
        rows.extend(
            self.group_permissions
                .iter()
                .map(|(g, v)| vec![format!("group:{g}"), v.clone()]),
        );
        render_table(&headers, &rows)
    }

    /// Total stored meta-tuples across all meta-relations.
    pub fn total_meta_tuples(&self) -> usize {
        self.meta.values().map(MetaRelation::len).sum()
    }

    /// A variable id strictly above every id the store has assigned —
    /// the starting point for fresh variables in derived meta-tuples.
    pub fn next_var_hint(&self) -> VarId {
        self.next_var
    }

    /// The storage position of a *stored* meta-tuple: its branch tag
    /// (view name, `#k`-suffixed for branches beyond the first) and its
    /// atom ordinal within the branch (see `core::storage`).
    pub fn storage_position_of(&self, t: &MetaTuple) -> Option<(String, usize)> {
        let id = if t.covers.len() == 1 {
            *t.covers.iter().next().expect("len checked")
        } else {
            return None;
        };
        for (name, entry) in &self.views {
            for (bi, b) in entry.branches.iter().enumerate() {
                if let Some(ordinal) = b.tuple_ids.iter().position(|&x| x == id) {
                    let tag = if bi == 0 {
                        name.clone()
                    } else {
                        format!("{name}#{}", bi + 1)
                    };
                    return Some((tag, ordinal + 1));
                }
            }
        }
        None
    }

    /// Every comparison atom with its branch storage tag (for the
    /// `COMPARISON` relation).
    pub fn all_comparisons(&self) -> Vec<(String, &ConstraintAtom)> {
        let mut out = Vec::new();
        for (name, entry) in &self.views {
            for (bi, b) in entry.branches.iter().enumerate() {
                let tag = if bi == 0 {
                    name.clone()
                } else {
                    format!("{name}#{}", bi + 1)
                };
                for a in &b.comparisons {
                    out.push((tag.clone(), a));
                }
            }
        }
        out
    }

    /// Every grant as `(principal, view)` rows, group principals with
    /// the `group:` prefix (for the `PERMISSION` relation).
    pub fn all_grants(&self) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = self
            .permissions
            .iter()
            .map(|(u, v)| (u.clone(), v.clone()))
            .collect();
        out.extend(
            self.group_permissions
                .iter()
                .map(|(g, v)| (format!("group:{g}"), v.clone())),
        );
        out
    }

    /// Every group membership as `(group, user)` rows.
    pub fn all_memberships(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for (user, groups) in &self.membership {
            for g in groups {
                out.push((g.clone(), user.clone()));
            }
        }
        out
    }

    /// Install a view whose branches arrive pre-normalized (the storage
    /// decoder's path). Each branch's surface statement is decompiled
    /// from the normal form.
    pub(crate) fn define_view_from_storage(
        &mut self,
        name: &str,
        branches: Vec<motro_views::NormalizedView>,
    ) -> CoreResult<()> {
        if self.views.contains_key(name) {
            return Err(CoreError::DuplicateView(name.to_owned()));
        }
        if branches.is_empty() {
            return Err(CoreError::Internal(
                "a view needs at least one branch".to_owned(),
            ));
        }
        let mut entries = Vec::with_capacity(branches.len());
        for nv in &branches {
            let definition = motro_views::decompile(nv, &self.scheme)?;
            entries.push(self.install_normalized(name, definition, nv)?);
        }
        self.views
            .insert(name.to_owned(), ViewEntry { branches: entries });
        self.regenerate_selfjoins();
        self.bump_epoch();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use motro_rel::CompOp;
    use motro_views::AttrRef;

    fn store() -> AuthStore {
        fixtures::paper_store()
    }

    #[test]
    fn figure1_meta_tuple_layout() {
        let s = store();
        // EMPLOYEE': SAE (*, ⊔, *), ELP (x₁*, *, ⊔), EST ×2 (*, x₄*, ⊔).
        let emp = s.meta_relation("EMPLOYEE").unwrap();
        assert_eq!(emp.len(), 4);
        let sae = &emp.tuples[0];
        assert_eq!(sae.render_provenance(), "SAE");
        assert_eq!(sae.cells[0].render(), "*");
        assert_eq!(sae.cells[1].render(), "");
        assert_eq!(sae.cells[2].render(), "*");
        let elp = &emp.tuples[1];
        assert_eq!(elp.cells[0].render(), "x1*");
        assert_eq!(elp.cells[1].render(), "*");
        assert_eq!(elp.cells[2].render(), "");
        let est1 = &emp.tuples[2];
        let est2 = &emp.tuples[3];
        assert_eq!(est1.cells[1].render(), "x4*");
        assert_eq!(est1.cells[1], est2.cells[1]);

        // PROJECT': PSA (*, Acme*, *), ELP (x₂*, ⊔, x₃*).
        let proj = s.meta_relation("PROJECT").unwrap();
        assert_eq!(proj.len(), 2);
        assert_eq!(proj.tuples[1].cells[1].render(), "Acme*");
        let elp_p = &proj.tuples[0];
        assert_eq!(elp_p.cells[0].render(), "x2*");
        assert_eq!(elp_p.cells[2].render(), "x3*");
        // The BUDGET variable carries its COMPARISON atom locally.
        assert!(!elp_p.constraints.is_empty());

        // ASSIGNMENT': ELP (x₁*, x₂*).
        let asg = s.meta_relation("ASSIGNMENT").unwrap();
        assert_eq!(asg.len(), 1);
        assert_eq!(asg.tuples[0].cells[0].render(), "x1*");
        assert_eq!(asg.tuples[0].cells[1].render(), "x2*");
    }

    #[test]
    fn figure1_permissions() {
        let s = store();
        assert_eq!(s.permitted_views("Brown"), vec!["EST", "PSA", "SAE"]);
        assert_eq!(s.permitted_views("Klein"), vec!["ELP", "EST"]);
        assert!(s.permitted_views("Nobody").is_empty());
    }

    #[test]
    fn duplicate_view_rejected() {
        let mut s = store();
        let q = ConjunctiveQuery::view("SAE")
            .target("EMPLOYEE", "NAME")
            .build();
        assert!(matches!(
            s.define_view(&q),
            Err(CoreError::DuplicateView(_))
        ));
    }

    #[test]
    fn permit_unknown_view_rejected() {
        let mut s = store();
        assert!(s.permit("NOPE", "Brown").is_err());
    }

    #[test]
    fn revoke_semantics() {
        let mut s = store();
        assert!(s.revoke("SAE", "Brown").is_ok());
        assert!(matches!(
            s.revoke("SAE", "Brown"),
            Err(CoreError::UnknownGrant { .. })
        ));
        assert!(!s.permitted_views("Brown").contains(&"SAE"));
    }

    #[test]
    fn drop_view_removes_everything() {
        let mut s = store();
        let before = s.total_meta_tuples();
        s.drop_view("ELP").unwrap();
        assert_eq!(s.total_meta_tuples(), before - 3);
        assert!(!s.permitted_views("Klein").contains(&"ELP"));
        assert!(s.view("ELP").is_err());
        // EST survives in EMPLOYEE'.
        assert_eq!(s.meta_relation("EMPLOYEE").unwrap().len(), 3);
    }

    #[test]
    fn candidates_prune_by_entirety() {
        let s = store();
        let only_project: BTreeSet<String> = BTreeSet::from(["PROJECT".to_owned()]);
        // Brown on PROJECT: SAE and EST live in EMPLOYEE → only PSA.
        let c = s.candidates("Brown", "PROJECT", &only_project);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].render_provenance(), "PSA");
        // Klein on PROJECT alone: ELP spans three relations → nothing.
        let c = s.candidates("Klein", "PROJECT", &only_project);
        assert!(c.is_empty());
        // Klein with all three relations: ELP's PROJECT tuple appears.
        let all: BTreeSet<String> = ["EMPLOYEE", "PROJECT", "ASSIGNMENT"]
            .map(str::to_owned)
            .into();
        let c = s.candidates("Klein", "PROJECT", &all);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].render_provenance(), "ELP");
    }

    #[test]
    fn candidates_include_selfjoins_for_brown() {
        let s = store();
        let only_emp: BTreeSet<String> = BTreeSet::from(["EMPLOYEE".to_owned()]);
        let c = s.candidates("Brown", "EMPLOYEE", &only_emp);
        // SAE + EST + EST stored, plus the (cell-identical, merged)
        // SAE⋈EST combination.
        assert_eq!(c.len(), 4, "got {}", c.len());
        assert!(c
            .iter()
            .any(|t| t.provenance.len() == 2 && t.render_provenance() == "EST, SAE"));
        // Klein is not permitted SAE → no combination for him.
        let k = s.candidates("Klein", "EMPLOYEE", &only_emp);
        assert!(k.iter().all(|t| t.provenance.len() == 1));
    }

    #[test]
    fn closure_test_uses_var_homes() {
        let s = store();
        let all: BTreeSet<String> = ["EMPLOYEE", "PROJECT", "ASSIGNMENT"]
            .map(str::to_owned)
            .into();
        let elp_proj = s
            .candidates("Klein", "PROJECT", &all)
            .into_iter()
            .next()
            .unwrap();
        // ELP's PROJECT tuple references x₂ (shared with ASSIGNMENT) →
        // not closed alone.
        assert!(!s.is_closed(&elp_proj));
        // The concatenation of all three ELP tuples is closed.
        let emp = s.candidates("Klein", "EMPLOYEE", &all);
        let elp_emp = emp.iter().find(|t| t.render_provenance() == "ELP").unwrap();
        let asg = s
            .candidates("Klein", "ASSIGNMENT", &all)
            .into_iter()
            .next()
            .unwrap();
        let row = elp_emp.concat(&asg).concat(&elp_proj);
        assert!(s.is_closed(&row));
    }

    #[test]
    fn display_tables_render() {
        let s = store();
        let t = s.comparison_table();
        assert!(t.contains("COMPARE"));
        assert!(t.contains(">="));
        assert!(t.contains("250000"));
        let p = s.permission_table();
        assert!(p.contains("Brown"));
        assert!(p.contains("Klein"));
        let m = s.meta_table("PROJECT", None).unwrap();
        assert!(m.contains("Acme*"));
    }

    #[test]
    fn epoch_advances_on_every_auth_mutation() {
        let mut s = AuthStore::new(fixtures::paper_scheme());
        let mut last = s.auth_epoch();
        let mut expect_bump = |s: &AuthStore, what: &str| {
            assert!(s.auth_epoch() > last, "{what} did not bump the epoch");
            last = s.auth_epoch();
        };
        let v = ConjunctiveQuery::view("V")
            .target("EMPLOYEE", "NAME")
            .build();
        s.define_view(&v).unwrap();
        expect_bump(&s, "define_view");
        s.permit("V", "Brown").unwrap();
        expect_bump(&s, "permit");
        s.permit_group("V", "eng").unwrap();
        expect_bump(&s, "permit_group");
        s.add_member("eng", "Klein");
        expect_bump(&s, "add_member");
        assert!(s.remove_member("eng", "Klein"));
        expect_bump(&s, "remove_member");
        s.revoke_group("V", "eng").unwrap();
        expect_bump(&s, "revoke_group");
        s.revoke("V", "Brown").unwrap();
        expect_bump(&s, "revoke");
        s.set_selfjoin_rounds(2);
        expect_bump(&s, "set_selfjoin_rounds");
        s.drop_view("V").unwrap();
        expect_bump(&s, "drop_view");
        // Failed mutations leave the epoch alone.
        assert!(s.permit("NOPE", "Brown").is_err());
        assert_eq!(s.auth_epoch(), last);
        assert!(!s.remove_member("eng", "Klein"));
        assert_eq!(s.auth_epoch(), last);
    }

    #[test]
    fn mutations_report_precise_touched_sets() {
        let mut s = store();
        s.take_touched(); // drain the fixture's setup mutations

        s.permit("SAE", "Smith").unwrap();
        assert_eq!(s.take_touched().render(), vec!["user:Smith"]);

        s.permit_group("SAE", "eng").unwrap();
        assert_eq!(s.take_touched().render(), vec!["group:eng"]);

        s.add_member("eng", "Klein");
        assert_eq!(s.take_touched().render(), vec!["user:Klein"]);

        // Batches accumulate until drained.
        assert!(s.remove_member("eng", "Klein"));
        s.revoke_group("SAE", "eng").unwrap();
        assert_eq!(s.take_touched().render(), vec!["user:Klein", "group:eng"]);

        // Grants to a group principal touch the group too.
        s.permit("SAE", "group:eng").unwrap();
        assert_eq!(
            s.take_touched().render(),
            vec!["user:group:eng", "group:eng"]
        );

        // View DDL touches the view name and its branch relations.
        let v = ConjunctiveQuery::view("V")
            .target("EMPLOYEE", "NAME")
            .build();
        s.define_view(&v).unwrap();
        assert_eq!(s.take_touched().render(), vec!["view:V", "rel:EMPLOYEE"]);
        s.drop_view("V").unwrap();
        assert_eq!(s.take_touched().render(), vec!["view:V", "rel:EMPLOYEE"]);

        // A direct bump (out-of-band change) degrades to All,
        // and All is sticky across the batch.
        s.bump_epoch();
        s.permit("SAE", "Smith").unwrap();
        let t = s.take_touched();
        assert_eq!(t, Touched::All);
        assert_eq!(t.render(), vec!["*"]);

        // set_selfjoin_rounds changes every stored combination: All.
        s.set_selfjoin_rounds(2);
        assert_eq!(s.take_touched(), Touched::All);

        // Failed mutations touch nothing.
        assert!(s.permit("NOPE", "Brown").is_err());
        assert!(s.take_touched().is_empty());
    }

    #[test]
    fn mask_dependencies_cover_the_pipeline_reads() {
        let mut s = store();
        s.permit_group("SAE", "eng").unwrap();
        s.add_member("eng", "Brown");
        s.take_touched(); // drain the setup mutations

        let emp_only: BTreeSet<String> = ["EMPLOYEE".to_string()].into();
        let deps = s.mask_dependencies("Brown", &emp_only);
        // Principal, group, plan relation, and the granted views with a
        // branch inside {EMPLOYEE} (SAE and EST; ELP needs PROJECT too).
        assert!(deps.contains(&Dep::user("Brown")));
        assert!(deps.contains(&Dep::group("eng")));
        assert!(deps.contains(&Dep::relation("EMPLOYEE")));
        assert!(deps.contains(&Dep::view("SAE")));
        assert!(deps.contains(&Dep::view("EST")));

        // Klein holds ELP, but it is usable (hence a dependency) only
        // when the plan covers the view's whole relation footprint.
        let deps = s.mask_dependencies("Klein", &emp_only);
        assert!(!deps.contains(&Dep::view("ELP")));
        let wide: BTreeSet<String> = [
            "EMPLOYEE".to_string(),
            "ASSIGNMENT".to_string(),
            "PROJECT".to_string(),
        ]
        .into();
        let deps = s.mask_dependencies("Klein", &wide);
        assert!(deps.contains(&Dep::view("ELP")));

        // Group principals read the group's grants directly.
        let deps = s.mask_dependencies("group:eng", &emp_only);
        assert!(deps.contains(&Dep::group("eng")));
        assert!(deps.contains(&Dep::user("group:eng")));

        // Every mutation's touched-set intersects the provenance of the
        // masks it can change: a group grant hits Brown's deps.
        s.permit_group("EST", "eng").unwrap();
        let touched = s.take_touched();
        assert!(touched.affects(&s.mask_dependencies("Brown", &emp_only)));
        // ...but not an unrelated user's.
        assert!(!touched.affects(&s.mask_dependencies("Klein", &emp_only)));
    }

    #[test]
    fn group_principal_prefix_lists_group_grants() {
        let mut s = store();
        s.permit_group("SAE", "eng").unwrap();
        s.permit_group("EST", "eng").unwrap();
        assert_eq!(s.permitted_views("group:eng"), vec!["EST", "SAE"]);
        assert!(s.permitted_views("group:ops").is_empty());
        // The prefix names the group itself, not a member.
        s.add_member("eng", "Klein");
        assert!(s.permitted_views("Klein").contains(&"SAE"));
        assert!(!s.permitted_views("group:eng").contains(&"ELP"));
    }

    #[test]
    fn variables_are_globally_renumbered() {
        let mut s = AuthStore::new(fixtures::paper_scheme());
        // Two views each using one variable locally — must not collide.
        let v1 = ConjunctiveQuery::view("V1")
            .target("EMPLOYEE", "NAME")
            .where_const(AttrRef::new("EMPLOYEE", "SALARY"), CompOp::Ge, 10)
            .build();
        let v2 = ConjunctiveQuery::view("V2")
            .target("EMPLOYEE", "NAME")
            .where_const(AttrRef::new("EMPLOYEE", "SALARY"), CompOp::Le, 5)
            .build();
        s.define_view(&v1).unwrap();
        s.define_view(&v2).unwrap();
        let emp = s.meta_relation("EMPLOYEE").unwrap();
        let x1 = emp.tuples[0].cells[2].as_var().unwrap();
        let x2 = emp.tuples[1].cells[2].as_var().unwrap();
        assert_ne!(x1, x2);
    }
}
