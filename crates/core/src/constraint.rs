//! Constraint sets over view variables, and the interval solver behind
//! the four-case selection refinement (paper, Section 4.2).
//!
//! The paper stores non-equality comparisons in the auxiliary relation
//! `COMPARISON = (VIEW, X, COMPARE, Y)`. Operationally, each derived
//! meta-tuple carries the atoms that mention its variables as a
//! tuple-local [`ConstraintSet`] (the paper notes that determining the
//! selection case "may require consulting relation COMPARISON, and,
//! possibly, modifying it" — tuple-local sets make those modifications
//! side-effect free).
//!
//! The §4.2 refinement distinguishes four cases when a query predicate λ
//! meets a meta-tuple predicate µ on the same attribute:
//!
//! * λ ⊨ µ  → the field is **cleared** (µ is vacuous on the result);
//! * µ ⊨ λ  → the meta-tuple is **retained** unmodified;
//! * λ ∧ µ unsatisfiable → the meta-tuple is **discarded**;
//! * otherwise → the meta-tuple is **modified** to represent µ ∧ λ.
//!
//! [`Interval`] decides implication and disjointness exactly for
//! conjunctions of single-variable comparisons against constants (the
//! paper's budget examples), with integer-adjacency normalization
//! (`x < 2 ≡ x ≤ 1` over `Int`) and `≠` exclusion points. Predicates the
//! solver cannot decide (var–var atoms) fall back to the sound default —
//! conjoin and keep — matching the paper's instruction that undecided
//! forms must not be *cleared*.

use crate::metatuple::VarId;
use motro_rel::{CompOp, Value};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::fmt;

/// Right-hand side of a constraint atom.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Rhs {
    /// Another variable.
    Var(VarId),
    /// A constant.
    Const(Value),
}

impl fmt::Display for Rhs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rhs::Var(x) => write!(f, "x{x}"),
            Rhs::Const(v) => write!(f, "{v}"),
        }
    }
}

/// A comparison atom `x θ rhs` over view variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ConstraintAtom {
    /// Left variable.
    pub lhs: VarId,
    /// Comparator.
    pub op: CompOp,
    /// Right side.
    pub rhs: Rhs,
}

impl ConstraintAtom {
    /// `x θ c`.
    pub fn var_const(lhs: VarId, op: CompOp, v: impl Into<Value>) -> Self {
        ConstraintAtom {
            lhs,
            op,
            rhs: Rhs::Const(v.into()),
        }
    }

    /// `x θ y`.
    pub fn var_var(lhs: VarId, op: CompOp, rhs: VarId) -> Self {
        ConstraintAtom {
            lhs,
            op,
            rhs: Rhs::Var(rhs),
        }
    }

    /// Variables mentioned.
    pub fn vars(&self) -> BTreeSet<VarId> {
        let mut s = BTreeSet::from([self.lhs]);
        if let Rhs::Var(y) = self.rhs {
            s.insert(y);
        }
        s
    }

    /// Does the atom mention `x`?
    pub fn mentions(&self, x: VarId) -> bool {
        self.lhs == x || self.rhs == Rhs::Var(x)
    }

    /// Canonical orientation: var–var atoms keep the smaller id on the
    /// left so structurally equal constraints compare equal.
    pub fn normalized(&self) -> ConstraintAtom {
        match self.rhs {
            Rhs::Var(y) if y < self.lhs => ConstraintAtom {
                lhs: y,
                op: self.op.flip(),
                rhs: Rhs::Var(self.lhs),
            },
            _ => self.clone(),
        }
    }

    /// Evaluate under a (possibly partial) binding. `None` when a
    /// mentioned variable is unbound or domains mismatch.
    pub fn eval(&self, binding: &dyn Fn(VarId) -> Option<Value>) -> Option<bool> {
        let l = binding(self.lhs)?;
        let r = match &self.rhs {
            Rhs::Var(y) => binding(*y)?,
            Rhs::Const(v) => v.clone(),
        };
        self.op.eval(&l, &r).ok()
    }
}

impl fmt::Display for ConstraintAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{} {} {}", self.lhs, self.op, self.rhs)
    }
}

/// A conjunction of [`ConstraintAtom`]s, kept in canonical (normalized,
/// sorted, deduplicated) form so equal conjunctions compare equal.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ConstraintSet {
    atoms: Vec<ConstraintAtom>,
}

impl ConstraintSet {
    /// The empty (always-true) set.
    pub fn empty() -> Self {
        ConstraintSet::default()
    }

    /// Build from atoms, canonicalizing.
    pub fn new(atoms: Vec<ConstraintAtom>) -> Self {
        let mut atoms: Vec<ConstraintAtom> = atoms.iter().map(ConstraintAtom::normalized).collect();
        atoms.sort();
        atoms.dedup();
        ConstraintSet { atoms }
    }

    /// The atoms, canonical order.
    pub fn atoms(&self) -> &[ConstraintAtom] {
        &self.atoms
    }

    /// No atoms?
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// All variables mentioned.
    pub fn vars(&self) -> BTreeSet<VarId> {
        self.atoms.iter().flat_map(ConstraintAtom::vars).collect()
    }

    /// Is `x` mentioned?
    pub fn mentions(&self, x: VarId) -> bool {
        self.atoms.iter().any(|a| a.mentions(x))
    }

    /// Add an atom.
    pub fn push(&mut self, atom: ConstraintAtom) {
        self.atoms.push(atom.normalized());
        self.atoms.sort();
        self.atoms.dedup();
    }

    /// Union of two sets.
    pub fn merge(&self, other: &ConstraintSet) -> ConstraintSet {
        let mut atoms = self.atoms.clone();
        atoms.extend(other.atoms.iter().cloned());
        ConstraintSet::new(atoms)
    }

    /// A canonical clone (already canonical; provided for dedup keys).
    pub fn canonical(&self) -> ConstraintSet {
        self.clone()
    }

    /// Drop every atom mentioning `x` (used when clearing a field).
    pub fn remove_var(&mut self, x: VarId) {
        self.atoms.retain(|a| !a.mentions(x));
    }

    /// Bind `x := v`: atoms `x θ c` are evaluated (any false → returns
    /// `false`, constraint violated); atoms `x θ y` are rewritten to
    /// `y θ' v`.
    pub fn bind(&mut self, x: VarId, v: &Value) -> bool {
        let mut out = Vec::with_capacity(self.atoms.len());
        for a in self.atoms.drain(..) {
            match (&a.rhs, a.lhs == x) {
                (Rhs::Const(c), true) => match a.op.eval(v, c) {
                    Ok(true) => {}
                    _ => return false,
                },
                (Rhs::Var(y), true) if *y == x => {
                    // x θ x under binding: v θ v.
                    if !a.op.eval(v, v).unwrap_or(false) {
                        return false;
                    }
                }
                (Rhs::Var(y), true) => out.push(ConstraintAtom {
                    lhs: *y,
                    op: a.op.flip(),
                    rhs: Rhs::Const(v.clone()),
                }),
                (Rhs::Var(y), false) if *y == x => out.push(ConstraintAtom {
                    lhs: a.lhs,
                    op: a.op,
                    rhs: Rhs::Const(v.clone()),
                }),
                _ => out.push(a),
            }
        }
        *self = ConstraintSet::new(out);
        true
    }

    /// Substitute variable `y := x` throughout.
    pub fn substitute(&mut self, y: VarId, x: VarId) {
        let rewritten = self
            .atoms
            .drain(..)
            .map(|mut a| {
                if a.lhs == y {
                    a.lhs = x;
                }
                if a.rhs == Rhs::Var(y) {
                    a.rhs = Rhs::Var(x);
                }
                a
            })
            .collect();
        *self = ConstraintSet::new(rewritten);
    }

    /// The interval of values variable `x` may take, considering only
    /// its var–const atoms. `None` when `x` participates in any var–var
    /// atom (undecidable by this solver) or mixes domains.
    pub fn interval_of(&self, x: VarId) -> Option<Interval> {
        let mut iv = Interval::full();
        for a in &self.atoms {
            if !a.mentions(x) {
                continue;
            }
            match &a.rhs {
                Rhs::Var(_) => return None,
                Rhs::Const(v) => {
                    // Atom is `x θ v` (lhs must be x since rhs is const).
                    iv = iv.intersect(&Interval::from_op(a.op, v.clone()))?;
                }
            }
        }
        Some(iv)
    }

    /// Quick unsatisfiability check on variable `x`: its interval (when
    /// decidable) is empty. `false` means "not obviously unsatisfiable".
    pub fn obviously_unsat(&self, x: VarId) -> bool {
        matches!(self.interval_of(x), Some(iv) if iv.is_empty())
    }

    /// Evaluate the conjunction under a binding; `None` when undecided.
    pub fn eval(&self, binding: &dyn Fn(VarId) -> Option<Value>) -> Option<bool> {
        let mut all = true;
        for a in &self.atoms {
            match a.eval(binding) {
                Some(false) => return Some(false),
                Some(true) => {}
                None => all = false,
            }
        }
        if all {
            Some(true)
        } else {
            None
        }
    }
}

impl fmt::Display for ConstraintSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " and ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// An endpoint of an interval.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bound {
    /// No bound on this side.
    Unbounded,
    /// Closed endpoint.
    Incl(Value),
    /// Open endpoint.
    Excl(Value),
}

/// The set of values satisfying a conjunction of comparisons against
/// constants: an interval with `≠` exclusion points.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Interval {
    lo: Bound,
    hi: Bound,
    excl: BTreeSet<Value>,
    empty: bool,
}

/// The outcome of comparing a query predicate λ with a meta-tuple
/// predicate µ (paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionCase {
    /// λ ⊨ µ: the view restriction is vacuous on the result — clear the
    /// field.
    Clear,
    /// µ ⊨ λ: retain the meta-tuple unmodified.
    Retain,
    /// λ ∧ µ unsatisfiable: discard the meta-tuple.
    Discard,
    /// Otherwise: modify the meta-tuple to represent µ ∧ λ.
    Modify,
}

impl Interval {
    /// The full interval (always true).
    pub fn full() -> Self {
        Interval {
            lo: Bound::Unbounded,
            hi: Bound::Unbounded,
            excl: BTreeSet::new(),
            empty: false,
        }
    }

    /// The empty interval (unsatisfiable).
    pub fn none() -> Self {
        Interval {
            lo: Bound::Unbounded,
            hi: Bound::Unbounded,
            excl: BTreeSet::new(),
            empty: true,
        }
    }

    /// The point interval `{v}`.
    pub fn point(v: Value) -> Self {
        Interval {
            lo: Bound::Incl(v.clone()),
            hi: Bound::Incl(v),
            excl: BTreeSet::new(),
            empty: false,
        }
    }

    /// The interval of `x θ v`.
    pub fn from_op(op: CompOp, v: Value) -> Self {
        let mut iv = match op {
            CompOp::Eq => Interval::point(v),
            CompOp::Ne => Interval {
                lo: Bound::Unbounded,
                hi: Bound::Unbounded,
                excl: BTreeSet::from([v]),
                empty: false,
            },
            CompOp::Lt => Interval {
                lo: Bound::Unbounded,
                hi: Bound::Excl(v),
                excl: BTreeSet::new(),
                empty: false,
            },
            CompOp::Le => Interval {
                lo: Bound::Unbounded,
                hi: Bound::Incl(v),
                excl: BTreeSet::new(),
                empty: false,
            },
            CompOp::Gt => Interval {
                lo: Bound::Excl(v),
                hi: Bound::Unbounded,
                excl: BTreeSet::new(),
                empty: false,
            },
            CompOp::Ge => Interval {
                lo: Bound::Incl(v),
                hi: Bound::Unbounded,
                excl: BTreeSet::new(),
                empty: false,
            },
        };
        iv.normalize();
        iv
    }

    /// Over the integers, open bounds are equivalent to shifted closed
    /// bounds (`x < 2 ≡ x ≤ 1`); normalizing makes implication exact.
    fn normalize(&mut self) {
        if let Bound::Excl(Value::Int(k)) = &self.hi {
            match k.checked_sub(1) {
                Some(k1) => self.hi = Bound::Incl(Value::Int(k1)),
                None => self.empty = true, // x < i64::MIN
            }
        }
        if let Bound::Excl(Value::Int(k)) = &self.lo {
            match k.checked_add(1) {
                Some(k1) => self.lo = Bound::Incl(Value::Int(k1)),
                None => self.empty = true, // x > i64::MAX
            }
        }
        if self.empty {
            return;
        }
        // Detect crossed bounds.
        if let Some(ord) = cmp_bound_values(&self.lo, &self.hi) {
            let lo_open = matches!(self.lo, Bound::Excl(_));
            let hi_open = matches!(self.hi, Bound::Excl(_));
            match ord {
                Ordering::Greater => self.empty = true,
                Ordering::Equal if lo_open || hi_open => self.empty = true,
                Ordering::Equal => {
                    // Point interval: excluded point empties it.
                    if let Bound::Incl(v) = &self.lo {
                        if self.excl.contains(v) {
                            self.empty = true;
                        }
                    }
                }
                Ordering::Less => {}
            }
        }
        if self.empty {
            return;
        }
        // Drop exclusion points outside the interval; exclusions equal to
        // a closed endpoint tighten it over the integers.
        let (lo, hi) = (self.lo.clone(), self.hi.clone());
        self.excl
            .retain(|v| bound_allows_lower(&lo, v) && bound_allows_upper(&hi, v));
        loop {
            let mut changed = false;
            if let Bound::Incl(Value::Int(k)) = &self.lo {
                if self.excl.remove(&Value::Int(*k)) {
                    match k.checked_add(1) {
                        Some(k1) => self.lo = Bound::Incl(Value::Int(k1)),
                        None => self.empty = true,
                    }
                    changed = true;
                }
            }
            if self.empty {
                return;
            }
            if let Bound::Incl(Value::Int(k)) = &self.hi {
                if self.excl.remove(&Value::Int(*k)) {
                    match k.checked_sub(1) {
                        Some(k1) => self.hi = Bound::Incl(Value::Int(k1)),
                        None => self.empty = true,
                    }
                    changed = true;
                }
            }
            if self.empty {
                return;
            }
            if !changed {
                break;
            }
            if let Some(Ordering::Greater) = cmp_bound_values(&self.lo, &self.hi) {
                self.empty = true;
                return;
            }
        }
        if let (Some(Ordering::Equal), Bound::Incl(v)) =
            (cmp_bound_values(&self.lo, &self.hi), &self.lo)
        {
            if self.excl.contains(v) {
                self.empty = true;
            }
        }
    }

    /// Unsatisfiable?
    pub fn is_empty(&self) -> bool {
        self.empty
    }

    /// Always true (no restriction)?
    pub fn is_full(&self) -> bool {
        !self.empty
            && matches!(self.lo, Bound::Unbounded)
            && matches!(self.hi, Bound::Unbounded)
            && self.excl.is_empty()
    }

    /// Does the interval contain `v`?
    pub fn contains(&self, v: &Value) -> bool {
        !self.empty
            && bound_allows_lower(&self.lo, v)
            && bound_allows_upper(&self.hi, v)
            && !self.excl.contains(v)
    }

    /// Intersection. `None` when the operands mix value domains (a type
    /// error upstream; callers treat it as undecidable).
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        if self.empty || other.empty {
            return Some(Interval::none());
        }
        let lo = match cmp_lower(&self.lo, &other.lo) {
            Some(Ordering::Less) => other.lo.clone(),
            Some(_) => self.lo.clone(),
            None => return None,
        };
        let hi = match cmp_upper(&self.hi, &other.hi) {
            Some(Ordering::Greater) => other.hi.clone(),
            Some(_) => self.hi.clone(),
            None => return None,
        };
        let mut excl = self.excl.clone();
        excl.extend(other.excl.iter().cloned());
        let mut iv = Interval {
            lo,
            hi,
            excl,
            empty: false,
        };
        iv.normalize();
        Some(iv)
    }

    /// Does `self ⊆ other` hold? `None` when undecidable (mixed
    /// domains).
    pub fn implies(&self, other: &Interval) -> Option<bool> {
        if self.empty {
            return Some(true);
        }
        if other.empty {
            return Some(false);
        }
        // other's lower bound must be no stricter than self's.
        match cmp_lower(&other.lo, &self.lo) {
            Some(Ordering::Greater) => return Some(false),
            Some(_) => {}
            None => return None,
        }
        match cmp_upper(&other.hi, &self.hi) {
            Some(Ordering::Less) => return Some(false),
            Some(_) => {}
            None => return None,
        }
        // Every value other excludes must be outside self.
        for v in &other.excl {
            let inside_range = bound_allows_lower(&self.lo, v) && bound_allows_upper(&self.hi, v);
            if inside_range && !self.excl.contains(v) {
                return Some(false);
            }
        }
        Some(true)
    }

    /// Decide the §4.2 selection case for query predicate λ (`self`) vs
    /// meta-tuple predicate µ (`other`). Undecidable comparisons map to
    /// [`SelectionCase::Modify`], the sound conjoin-and-keep default.
    pub fn four_case(lambda: &Interval, mu: &Interval) -> SelectionCase {
        match lambda.implies(mu) {
            Some(true) => return SelectionCase::Clear,
            Some(false) => {}
            None => return SelectionCase::Modify,
        }
        match mu.implies(lambda) {
            Some(true) => return SelectionCase::Retain,
            Some(false) => {}
            None => return SelectionCase::Modify,
        }
        match lambda.intersect(mu) {
            Some(iv) if iv.is_empty() => SelectionCase::Discard,
            _ => SelectionCase::Modify,
        }
    }

    /// If the interval pins a single value, return it.
    pub fn as_point(&self) -> Option<&Value> {
        if self.empty {
            return None;
        }
        match (&self.lo, &self.hi) {
            (Bound::Incl(a), Bound::Incl(b)) if a == b => Some(a),
            _ => None,
        }
    }
}

/// Compare the values inside two bounds; `None` if either is unbounded
/// or domains mismatch.
fn cmp_bound_values(a: &Bound, b: &Bound) -> Option<Ordering> {
    let av = match a {
        Bound::Incl(v) | Bound::Excl(v) => v,
        Bound::Unbounded => return None,
    };
    let bv = match b {
        Bound::Incl(v) | Bound::Excl(v) => v,
        Bound::Unbounded => return None,
    };
    av.compare(bv)
}

/// Compare two lower bounds by strictness: `Less` = weaker (admits
/// more). `None` on mixed domains.
fn cmp_lower(a: &Bound, b: &Bound) -> Option<Ordering> {
    match (a, b) {
        (Bound::Unbounded, Bound::Unbounded) => Some(Ordering::Equal),
        (Bound::Unbounded, _) => Some(Ordering::Less),
        (_, Bound::Unbounded) => Some(Ordering::Greater),
        _ => {
            let ord = cmp_bound_values(a, b)?;
            if ord != Ordering::Equal {
                return Some(ord);
            }
            // Same value: exclusive lower bound is stricter.
            let sa = matches!(a, Bound::Excl(_));
            let sb = matches!(b, Bound::Excl(_));
            Some(sa.cmp(&sb))
        }
    }
}

/// Compare two upper bounds by value position: `Less` = stricter (admits
/// less). `None` on mixed domains.
fn cmp_upper(a: &Bound, b: &Bound) -> Option<Ordering> {
    match (a, b) {
        (Bound::Unbounded, Bound::Unbounded) => Some(Ordering::Equal),
        (Bound::Unbounded, _) => Some(Ordering::Greater),
        (_, Bound::Unbounded) => Some(Ordering::Less),
        _ => {
            let ord = cmp_bound_values(a, b)?;
            if ord != Ordering::Equal {
                return Some(ord);
            }
            // Same value: exclusive upper bound is stricter (smaller).
            let sa = matches!(a, Bound::Excl(_));
            let sb = matches!(b, Bound::Excl(_));
            Some(sb.cmp(&sa))
        }
    }
}

fn bound_allows_lower(lo: &Bound, v: &Value) -> bool {
    match lo {
        Bound::Unbounded => true,
        Bound::Incl(b) => matches!(v.compare(b), Some(Ordering::Greater | Ordering::Equal)),
        Bound::Excl(b) => matches!(v.compare(b), Some(Ordering::Greater)),
    }
}

fn bound_allows_upper(hi: &Bound, v: &Value) -> bool {
    match hi {
        Bound::Unbounded => true,
        Bound::Incl(b) => matches!(v.compare(b), Some(Ordering::Less | Ordering::Equal)),
        Bound::Excl(b) => matches!(v.compare(b), Some(Ordering::Less)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(op: CompOp, v: i64) -> Interval {
        Interval::from_op(op, Value::int(v))
    }

    fn range(lo: i64, hi: i64) -> Interval {
        iv(CompOp::Ge, lo).intersect(&iv(CompOp::Le, hi)).unwrap()
    }

    #[test]
    fn from_op_membership() {
        assert!(iv(CompOp::Ge, 5).contains(&Value::int(5)));
        assert!(!iv(CompOp::Gt, 5).contains(&Value::int(5)));
        assert!(iv(CompOp::Gt, 5).contains(&Value::int(6)));
        assert!(iv(CompOp::Ne, 5).contains(&Value::int(4)));
        assert!(!iv(CompOp::Ne, 5).contains(&Value::int(5)));
        assert!(iv(CompOp::Eq, 5).contains(&Value::int(5)));
        assert!(!iv(CompOp::Eq, 5).contains(&Value::int(6)));
    }

    #[test]
    fn integer_adjacency_normalization() {
        // x < 2 over Int equals x ≤ 1.
        assert_eq!(iv(CompOp::Lt, 2), iv(CompOp::Le, 1));
        assert_eq!(iv(CompOp::Gt, 2), iv(CompOp::Ge, 3));
        // Strings are not normalized.
        let s = Interval::from_op(CompOp::Lt, Value::str("b"));
        assert!(matches!(s.hi, Bound::Excl(_)));
    }

    #[test]
    fn intersect_empty_when_disjoint() {
        assert!(range(1, 3).intersect(&range(5, 9)).unwrap().is_empty());
        assert!(!range(1, 5).intersect(&range(5, 9)).unwrap().is_empty());
        assert!(iv(CompOp::Lt, 5)
            .intersect(&iv(CompOp::Gt, 4))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn point_vs_ne_is_empty() {
        let p = iv(CompOp::Eq, 5);
        let ne = iv(CompOp::Ne, 5);
        assert!(p.intersect(&ne).unwrap().is_empty());
    }

    #[test]
    fn exclusion_tightens_integer_endpoint() {
        // x ≥ 5 ∧ x ≠ 5 → x ≥ 6.
        let t = iv(CompOp::Ge, 5).intersect(&iv(CompOp::Ne, 5)).unwrap();
        assert_eq!(t, iv(CompOp::Ge, 6));
        // Cascading: x in [5,6] ∧ x≠5 ∧ x≠6 → empty.
        let t = range(5, 6)
            .intersect(&iv(CompOp::Ne, 5))
            .unwrap()
            .intersect(&iv(CompOp::Ne, 6))
            .unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn implication_basics() {
        assert_eq!(
            iv(CompOp::Ge, 300).implies(&iv(CompOp::Ge, 250)),
            Some(true)
        );
        assert_eq!(
            iv(CompOp::Ge, 250).implies(&iv(CompOp::Ge, 300)),
            Some(false)
        );
        assert_eq!(range(3, 4).implies(&range(3, 6)), Some(true));
        assert_eq!(range(3, 7).implies(&range(3, 6)), Some(false));
        assert_eq!(Interval::none().implies(&range(0, 1)), Some(true));
        assert_eq!(range(0, 1).implies(&Interval::none()), Some(false));
        assert_eq!(range(0, 1).implies(&Interval::full()), Some(true));
    }

    #[test]
    fn implication_with_exclusions() {
        // [1,10] ⊆ (≠5)? no — 5 ∈ [1,10].
        assert_eq!(range(1, 10).implies(&iv(CompOp::Ne, 5)), Some(false));
        // [6,10] ⊆ (≠5)? yes.
        assert_eq!(range(6, 10).implies(&iv(CompOp::Ne, 5)), Some(true));
        // (≠5 within [1,10]) ⊆ [1,10]? yes.
        let lhs = range(1, 10).intersect(&iv(CompOp::Ne, 5)).unwrap();
        assert_eq!(lhs.implies(&range(1, 10)), Some(true));
    }

    #[test]
    fn mixed_domains_are_undecidable() {
        let a = Interval::from_op(CompOp::Ge, Value::int(1));
        let b = Interval::from_op(CompOp::Ge, Value::str("a"));
        assert_eq!(a.implies(&b), None);
        assert!(a.intersect(&b).is_none());
        assert_eq!(Interval::four_case(&a, &b), SelectionCase::Modify);
    }

    /// The paper's §4.2 worked example: view µ = budgets in
    /// [300k, 600k]; four queries.
    #[test]
    fn paper_budget_four_cases() {
        let mu = range(300_000, 600_000);
        // (1) λ = [200k, 400k]: overlap → modify (to [300k, 400k]).
        let l1 = range(200_000, 400_000);
        assert_eq!(Interval::four_case(&l1, &mu), SelectionCase::Modify);
        assert_eq!(l1.intersect(&mu).unwrap(), range(300_000, 400_000));
        // (2) λ = [200k, 700k]: µ ⊨ λ → retain.
        let l2 = range(200_000, 700_000);
        assert_eq!(Interval::four_case(&l2, &mu), SelectionCase::Retain);
        // (3) λ = [400k, 500k]: λ ⊨ µ → clear.
        let l3 = range(400_000, 500_000);
        assert_eq!(Interval::four_case(&l3, &mu), SelectionCase::Clear);
        // (4) λ = (-∞, 300k): contradiction → discard.
        let l4 = iv(CompOp::Lt, 300_000);
        assert_eq!(Interval::four_case(&l4, &mu), SelectionCase::Discard);
    }

    #[test]
    fn four_case_prefers_clear_on_equality() {
        let a = range(1, 5);
        assert_eq!(Interval::four_case(&a, &a.clone()), SelectionCase::Clear);
    }

    #[test]
    fn as_point() {
        assert_eq!(iv(CompOp::Eq, 5).as_point(), Some(&Value::int(5)));
        assert_eq!(range(5, 5).as_point(), Some(&Value::int(5)));
        assert_eq!(range(4, 5).as_point(), None);
        // [4,5] ∧ ≠4 → point 5.
        let p = range(4, 5).intersect(&iv(CompOp::Ne, 4)).unwrap();
        assert_eq!(p.as_point(), Some(&Value::int(5)));
    }

    #[test]
    fn string_intervals() {
        let a = Interval::from_op(CompOp::Ge, Value::str("Acme"));
        assert!(a.contains(&Value::str("Apex")));
        assert!(!a.contains(&Value::str("AAA")));
        let p = Interval::point(Value::str("Acme"));
        assert_eq!(p.implies(&a), Some(true));
        // String open bounds stay structural: x < "b" does not imply
        // x ≤ "a" (there are strings between) — conservative.
        let lt_b = Interval::from_op(CompOp::Lt, Value::str("b"));
        let le_a = Interval::from_op(CompOp::Le, Value::str("a"));
        assert_eq!(lt_b.implies(&le_a), Some(false));
        assert_eq!(le_a.implies(&lt_b), Some(true));
    }

    #[test]
    fn constraint_set_canonicalization() {
        let a = ConstraintSet::new(vec![
            ConstraintAtom::var_var(5, CompOp::Lt, 2),
            ConstraintAtom::var_const(1, CompOp::Ge, 10),
        ]);
        let b = ConstraintSet::new(vec![
            ConstraintAtom::var_const(1, CompOp::Ge, 10),
            ConstraintAtom::var_var(2, CompOp::Gt, 5),
        ]);
        assert_eq!(a, b);
    }

    #[test]
    fn constraint_set_interval_of() {
        let s = ConstraintSet::new(vec![
            ConstraintAtom::var_const(1, CompOp::Ge, 10),
            ConstraintAtom::var_const(1, CompOp::Lt, 20),
            ConstraintAtom::var_const(2, CompOp::Eq, 5),
        ]);
        assert_eq!(s.interval_of(1).unwrap(), range(10, 19));
        assert_eq!(s.interval_of(2).unwrap().as_point(), Some(&Value::int(5)));
        assert!(s.interval_of(3).unwrap().is_full());
        // var-var atoms make the variable undecidable.
        let s2 = ConstraintSet::new(vec![ConstraintAtom::var_var(1, CompOp::Lt, 2)]);
        assert!(s2.interval_of(1).is_none());
        assert!(s2.interval_of(2).is_none());
    }

    #[test]
    fn constraint_set_bind() {
        let mut s = ConstraintSet::new(vec![
            ConstraintAtom::var_const(1, CompOp::Ge, 10),
            ConstraintAtom::var_var(1, CompOp::Lt, 2),
        ]);
        assert!(s.bind(1, &Value::int(15)));
        // x1 ≥ 10 evaluated away; x1 < x2 becomes x2 > 15.
        assert_eq!(s.atoms(), &[ConstraintAtom::var_const(2, CompOp::Gt, 15)]);
        let mut s2 = ConstraintSet::new(vec![ConstraintAtom::var_const(1, CompOp::Ge, 10)]);
        assert!(!s2.bind(1, &Value::int(5)));
    }

    #[test]
    fn constraint_set_substitute_and_remove() {
        let mut s = ConstraintSet::new(vec![
            ConstraintAtom::var_var(1, CompOp::Lt, 2),
            ConstraintAtom::var_const(2, CompOp::Ge, 0),
        ]);
        s.substitute(2, 1);
        assert!(s.mentions(1));
        assert!(!s.mentions(2));
        s.remove_var(1);
        assert!(s.is_empty());
    }

    #[test]
    fn constraint_set_eval_under_binding() {
        let s = ConstraintSet::new(vec![
            ConstraintAtom::var_const(1, CompOp::Ge, 10),
            ConstraintAtom::var_var(1, CompOp::Lt, 2),
        ]);
        let full = |x: VarId| -> Option<Value> {
            match x {
                1 => Some(Value::int(15)),
                2 => Some(Value::int(20)),
                _ => None,
            }
        };
        assert_eq!(s.eval(&full), Some(true));
        let partial = |x: VarId| -> Option<Value> {
            match x {
                1 => Some(Value::int(15)),
                _ => None,
            }
        };
        assert_eq!(s.eval(&partial), None);
        let failing = |x: VarId| -> Option<Value> {
            match x {
                1 => Some(Value::int(5)),
                _ => None,
            }
        };
        assert_eq!(s.eval(&failing), Some(false));
    }

    #[test]
    fn obviously_unsat() {
        let s = ConstraintSet::new(vec![
            ConstraintAtom::var_const(1, CompOp::Gt, 10),
            ConstraintAtom::var_const(1, CompOp::Lt, 5),
        ]);
        assert!(s.obviously_unsat(1));
        assert!(!s.obviously_unsat(2));
    }

    #[test]
    fn overflow_edges() {
        assert!(iv(CompOp::Lt, i64::MIN).is_empty());
        assert!(iv(CompOp::Gt, i64::MAX).is_empty());
        assert!(!iv(CompOp::Le, i64::MIN).is_empty());
    }
}
