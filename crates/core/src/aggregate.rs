//! Aggregate authorization — the Section 6 extension for "views with
//! aggregate functions".
//!
//! Two ways an aggregate request can be permitted, tried in order:
//!
//! 1. **Via a granted aggregate view** — the statistical-database
//!    capability: a user may be granted `avg(SALARY) by DEPT` *without*
//!    any row-level access. The match is deliberately conservative
//!    (sound, not complete): the request's group-by keys must equal the
//!    view's positionally, its aggregates must be among the view's, and
//!    its base may only narrow the view's base through **constant
//!    selections on group-by attributes** (narrowing through any other
//!    attribute could isolate individuals — e.g. `avg(SALARY) where
//!    NAME = Jones` under a global-average grant would reveal a single
//!    salary).
//! 2. **Derived from masks** — the user could aggregate what they can
//!    already see: the base is extended with the aggregate inputs, the
//!    ordinary mask is computed, and only rows whose key *and* input
//!    cells are all visible contribute. The outcome reports whether the
//!    aggregate is complete or restricted to the permitted subset.

use crate::authorize::AuthorizedEngine;
use crate::error::{CoreError, CoreResult};
use motro_rel::{group_by, Relation};
use motro_views::{AggregateQuery, CalcTerm};
use serde::{Deserialize, Serialize};

/// How an aggregate answer was authorized.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AggAccessMode {
    /// Matched a granted aggregate view (full data, no row access
    /// implied).
    ViaAggregateView(String),
    /// Derived from the user's row-level masks.
    Derived {
        /// Every base row contributed.
        complete: bool,
        /// Rows aggregated.
        rows_used: usize,
        /// Rows excluded (not fully visible to the user).
        rows_excluded: usize,
    },
    /// Nothing permitted: no matching aggregate view and no visible
    /// rows.
    Denied,
}

/// The outcome of an authorized aggregate retrieval.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AggregateOutcome {
    /// The grouped result (empty when denied).
    pub result: Relation,
    /// How it was authorized.
    pub mode: AggAccessMode,
}

impl AggregateOutcome {
    /// Render the result with a provenance line.
    pub fn render(&self) -> String {
        let mut out = self.result.to_table();
        match &self.mode {
            AggAccessMode::ViaAggregateView(v) => {
                out.push_str(&format!("(authorized by aggregate view {v})\n"))
            }
            AggAccessMode::Derived { complete: true, .. } => {
                out.push_str("(derived from row permissions: complete)\n")
            }
            AggAccessMode::Derived {
                complete: false,
                rows_used,
                rows_excluded,
            } => out.push_str(&format!(
                "(derived from row permissions: PARTIAL — {rows_used} rows \
                 aggregated, {rows_excluded} not visible to you)\n"
            )),
            AggAccessMode::Denied => out.push_str("(denied: no permitted portion)\n"),
        }
        out
    }
}

/// Does `query` match granted aggregate view `view` under the
/// conservative rule in the module docs?
pub fn matches_aggregate_view(query: &AggregateQuery, view: &AggregateQuery) -> bool {
    // Group-by keys equal positionally.
    if query.base.targets != view.base.targets {
        return false;
    }
    // Aggregates must be among the view's.
    if !query.aggs.iter().all(|a| view.aggs.iter().any(|b| b == a)) {
        return false;
    }
    // The query must carry every view atom…
    if !view.base.atoms.iter().all(|a| query.base.atoms.contains(a)) {
        return false;
    }
    // …and any extra atom may only be a constant selection on a
    // group-by attribute.
    query.base.atoms.iter().all(|a| {
        view.base.atoms.contains(a)
            || (matches!(a.rhs, CalcTerm::Const(_)) && view.base.targets.contains(&a.lhs))
    })
}

impl<'a> AuthorizedEngine<'a> {
    /// Authorize and execute an aggregate request for `user`.
    pub fn retrieve_aggregate(
        &self,
        user: &str,
        query: &AggregateQuery,
    ) -> CoreResult<AggregateOutcome> {
        let scheme = self.database().schema();
        let compiled = query.compile(scheme)?;

        // 1. Granted aggregate views.
        for name in self.auth_store().permitted_views(user) {
            if let Some(av) = self.auth_store().aggregate_view(name) {
                if matches_aggregate_view(query, av) {
                    let answer = motro_rel::execute_optimized(&compiled.plan, self.database())?;
                    let result = group_by(&answer, &compiled.keys, &compiled.aggs)?;
                    return Ok(AggregateOutcome {
                        result,
                        mode: AggAccessMode::ViaAggregateView(name.to_owned()),
                    });
                }
            }
        }

        // 2. Derive from row-level masks: aggregate over the fully
        // visible rows of the extended base. The user receives only
        // aggregate values, so the internal mask may use the Section 6
        // extended-mask mechanism regardless of the engine's outward
        // configuration: conditions on attributes outside the aggregate
        // inputs still only ever *narrow* the contributing rows.
        let inner = AuthorizedEngine::with_config(
            self.database(),
            self.auth_store(),
            crate::authorize::RefinementConfig {
                extended_masks: true,
                ..self.config()
            },
        );
        let (mask, trace) = inner.mask_for_plan(user, &compiled.plan)?;
        // Evaluate over the (possibly widened) projection the mask was
        // computed for; a row contributes when its key and aggregate
        // input cells — the first `needed` columns — are all visible.
        let needed = compiled.plan.projection.len();
        let widened = motro_rel::CanonicalPlan {
            relations: compiled.plan.relations.clone(),
            selection: compiled.plan.selection.clone(),
            projection: trace.mask_projection.clone(),
        };
        let wide_answer = motro_rel::execute_optimized(&widened, self.database())?;
        let base_schema = compiled.plan.output_schema(self.database().schema())?;
        let mut visible = Relation::new(base_schema);
        let mut excluded_wide = std::collections::BTreeSet::new();
        for t in wide_answer.rows() {
            let cov = mask.coverage(t);
            let trimmed = t.project(&(0..needed).collect::<Vec<_>>());
            if cov[..needed].iter().all(|&v| v) {
                let _ = visible.insert(trimmed);
            } else {
                excluded_wide.insert(trimmed);
            }
        }
        // A base row is excluded only if *no* widened witness of it was
        // visible.
        let excluded = excluded_wide
            .iter()
            .filter(|t| !visible.contains(t))
            .count();
        if visible.is_empty() && excluded > 0 {
            return Ok(AggregateOutcome {
                result: Relation::new(
                    group_by(&visible, &compiled.keys, &compiled.aggs)?
                        .schema()
                        .clone(),
                ),
                mode: AggAccessMode::Denied,
            });
        }
        let rows_used = visible.len();
        let result = group_by(&visible, &compiled.keys, &compiled.aggs)?;
        Ok(AggregateOutcome {
            result,
            mode: AggAccessMode::Derived {
                complete: excluded == 0,
                rows_used,
                rows_excluded: excluded,
            },
        })
    }
}

/// Validation helper for aggregate *view definitions*: named, compiles.
pub fn validate_aggregate_view(
    q: &AggregateQuery,
    scheme: &motro_rel::DbSchema,
) -> CoreResult<String> {
    let name = q
        .base
        .name
        .clone()
        .ok_or_else(|| CoreError::Internal("aggregate view must be named".to_owned()))?;
    q.compile(scheme)?;
    Ok(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::AuthStore;
    use motro_rel::{tuple, AggFunc, CompOp, Database, DbSchema, Domain, Value};
    use motro_views::{AttrRef, ConjunctiveQuery};

    fn world() -> Database {
        let mut s = DbSchema::new();
        s.add_relation_with_key(
            "EMP",
            &[
                ("NAME", Domain::Str),
                ("DEPT", Domain::Str),
                ("SALARY", Domain::Int),
            ],
            Some(&["NAME"]),
        )
        .unwrap();
        let mut db = Database::new(s);
        db.insert_all(
            "EMP",
            vec![
                tuple!["Ada", "eng", 120],
                tuple!["Bob", "eng", 100],
                tuple!["Cleo", "sales", 80],
            ],
        )
        .unwrap();
        db
    }

    fn avg_by_dept(name: Option<&str>) -> AggregateQuery {
        AggregateQuery {
            base: ConjunctiveQuery {
                name: name.map(str::to_owned),
                targets: vec![AttrRef::new("EMP", "DEPT")],
                atoms: vec![],
            },
            aggs: vec![(AggFunc::Avg, AttrRef::new("EMP", "SALARY"))],
        }
    }

    #[test]
    fn aggregate_view_grants_without_row_access() {
        let db = world();
        let mut store = AuthStore::new(db.schema().clone());
        store
            .define_aggregate_view(&avg_by_dept(Some("AVGSAL")))
            .unwrap();
        store.permit("AVGSAL", "u").unwrap();
        let engine = AuthorizedEngine::new(&db, &store);

        let out = engine.retrieve_aggregate("u", &avg_by_dept(None)).unwrap();
        assert_eq!(out.mode, AggAccessMode::ViaAggregateView("AVGSAL".into()));
        assert!(out.result.contains(&tuple!["eng", 110]));
        assert!(out.result.contains(&tuple!["sales", 80]));

        // The same user has NO row access.
        let rows = engine
            .retrieve(
                "u",
                &ConjunctiveQuery::retrieve().target("EMP", "SALARY").build(),
            )
            .unwrap();
        assert!(rows.masked.is_empty());
    }

    #[test]
    fn narrowing_on_group_keys_is_allowed() {
        let db = world();
        let mut store = AuthStore::new(db.schema().clone());
        store
            .define_aggregate_view(&avg_by_dept(Some("AVGSAL")))
            .unwrap();
        store.permit("AVGSAL", "u").unwrap();
        let engine = AuthorizedEngine::new(&db, &store);

        let mut q = avg_by_dept(None);
        q.base.atoms.push(motro_views::CalcAtom {
            lhs: AttrRef::new("EMP", "DEPT"),
            op: CompOp::Eq,
            rhs: CalcTerm::Const(Value::str("eng")),
        });
        let out = engine.retrieve_aggregate("u", &q).unwrap();
        assert!(matches!(out.mode, AggAccessMode::ViaAggregateView(_)));
        assert_eq!(out.result.len(), 1);
        assert!(out.result.contains(&tuple!["eng", 110]));
    }

    #[test]
    fn narrowing_on_non_key_attributes_is_refused() {
        let db = world();
        let mut store = AuthStore::new(db.schema().clone());
        store
            .define_aggregate_view(&avg_by_dept(Some("AVGSAL")))
            .unwrap();
        store.permit("AVGSAL", "u").unwrap();
        let engine = AuthorizedEngine::new(&db, &store);

        // avg(SALARY) where NAME = Ada would reveal a single salary.
        let mut q = avg_by_dept(None);
        q.base.atoms.push(motro_views::CalcAtom {
            lhs: AttrRef::new("EMP", "NAME"),
            op: CompOp::Eq,
            rhs: CalcTerm::Const(Value::str("Ada")),
        });
        let out = engine.retrieve_aggregate("u", &q).unwrap();
        assert_eq!(out.mode, AggAccessMode::Denied);
        assert!(out.result.is_empty());
    }

    #[test]
    fn different_aggregate_not_covered() {
        let db = world();
        let mut store = AuthStore::new(db.schema().clone());
        store
            .define_aggregate_view(&avg_by_dept(Some("AVGSAL")))
            .unwrap();
        store.permit("AVGSAL", "u").unwrap();
        let engine = AuthorizedEngine::new(&db, &store);
        let mut q = avg_by_dept(None);
        q.aggs = vec![(AggFunc::Min, AttrRef::new("EMP", "SALARY"))];
        let out = engine.retrieve_aggregate("u", &q).unwrap();
        assert_eq!(out.mode, AggAccessMode::Denied);
    }

    #[test]
    fn derived_mode_complete_and_partial() {
        let db = world();
        let mut store = AuthStore::new(db.schema().clone());
        // Full row view → derived, complete.
        store
            .define_view(
                &ConjunctiveQuery::view("ALL")
                    .target("EMP", "NAME")
                    .target("EMP", "DEPT")
                    .target("EMP", "SALARY")
                    .build(),
            )
            .unwrap();
        store.permit("ALL", "full").unwrap();
        // Row view restricted to eng → derived, partial.
        store
            .define_view(
                &ConjunctiveQuery::view("ENG")
                    .target("EMP", "NAME")
                    .target("EMP", "DEPT")
                    .target("EMP", "SALARY")
                    .where_const(AttrRef::new("EMP", "DEPT"), CompOp::Eq, "eng")
                    .build(),
            )
            .unwrap();
        store.permit("ENG", "part").unwrap();
        let engine = AuthorizedEngine::new(&db, &store);

        let full = engine
            .retrieve_aggregate("full", &avg_by_dept(None))
            .unwrap();
        assert_eq!(
            full.mode,
            AggAccessMode::Derived {
                complete: true,
                rows_used: 3,
                rows_excluded: 0
            }
        );
        assert!(full.result.contains(&tuple!["sales", 80]));

        let part = engine
            .retrieve_aggregate("part", &avg_by_dept(None))
            .unwrap();
        assert_eq!(
            part.mode,
            AggAccessMode::Derived {
                complete: false,
                rows_used: 2,
                rows_excluded: 1
            }
        );
        assert!(part.result.contains(&tuple!["eng", 110]));
        assert!(!part
            .result
            .iter()
            .any(|t| t.value(0) == &Value::str("sales")));
    }

    #[test]
    fn no_access_is_denied() {
        let db = world();
        let store = AuthStore::new(db.schema().clone());
        let engine = AuthorizedEngine::new(&db, &store);
        let out = engine
            .retrieve_aggregate("nobody", &avg_by_dept(None))
            .unwrap();
        assert_eq!(out.mode, AggAccessMode::Denied);
    }
}
