//! The end-to-end authorization pipeline (paper, Figure 2 and Section 5).
//!
//! Given user `U` and query `Q`:
//!
//! 1. compile `Q` to the canonical plan `S` (products → selections →
//!    projections) and execute it over the actual relations → answer `A`;
//! 2. **prune** the meta-relations to the views `U` may access that are
//!    defined *in their entirety* within the relations `Q` references;
//! 3. run the same plan `S'` over the pruned meta-relations with the
//!    extended operators — the meta-product (with R1 padding), the
//!    theorem's closure pruning, the (four-case) meta-selections, and
//!    the meta-projection → meta-answer `A'`;
//! 4. take `A'` as the **mask**, apply it to `A`, and derive the
//!    inferred `permit` statements.
//!
//! Every refinement is individually switchable through
//! [`RefinementConfig`] for the ablation experiments; the paper-faithful
//! configuration is [`RefinementConfig::default`] (everything on).
//! [`AuthTrace`] captures the intermediate meta-relation states so the
//! worked examples of Section 5 can be reproduced table by table.

use crate::error::CoreResult;
use crate::mask::{Mask, MaskedRelation, PermitStatement};
use crate::meta_algebra::{
    meta_product_par, meta_project, meta_select_logged_par, DecisionRecord, SelectMode,
};
use crate::metatuple::MetaTuple;
use crate::store::AuthStore;
use motro_rel::{CanonicalPlan, Database, ExecConfig, Relation};
use motro_views::{compile, ConjunctiveQuery};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Switches for the Section 4 refinements (all on by default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RefinementConfig {
    /// R1: padded meta-products (`(a₁..aₘ, ⊔..⊔)` rows).
    pub product_padding: bool,
    /// R2: four-case selection (off → plain Definition 2 conjunction).
    pub four_case_selection: bool,
    /// R3: stored self-join combinations participate as candidates.
    pub self_join: bool,
    /// The theorem's closure pruning after products. **Required for
    /// soundness**; switchable only to reproduce the paper's unpruned
    /// intermediate displays and to measure its cost.
    pub closure_pruning: bool,
    /// The Section 6 extension ("deliver views that are expressed with
    /// additional attributes"): when a surviving meta-tuple would be
    /// killed by the final projection because a *condition* field falls
    /// outside the requested attributes, extend the projection with
    /// those fields internally, evaluate the mask over the extended
    /// answer, and trim the delivered rows back to the request. Off by
    /// default (the paper-faithful behavior delivers nothing in that
    /// case).
    pub extended_masks: bool,
}

impl Default for RefinementConfig {
    fn default() -> Self {
        RefinementConfig {
            product_padding: true,
            four_case_selection: true,
            self_join: true,
            closure_pruning: true,
            extended_masks: false,
        }
    }
}

impl RefinementConfig {
    /// The unrefined baseline: Definitions 1–3 plus closure pruning
    /// only.
    pub fn plain() -> Self {
        RefinementConfig {
            product_padding: false,
            four_case_selection: false,
            self_join: false,
            closure_pruning: true,
            extended_masks: false,
        }
    }
}

/// Intermediate meta-relation states for one authorization, mirroring
/// the tables of the paper's Section 5 examples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AuthTrace {
    /// The canonical plan that was executed twice.
    pub plan: CanonicalPlan,
    /// Pruned candidates per plan factor: `(relation, meta-tuples)`.
    pub candidates: Vec<(String, Vec<MetaTuple>)>,
    /// Meta-product size before closure pruning.
    pub product_len: usize,
    /// Rows surviving the product (after closure pruning).
    pub product: Vec<MetaTuple>,
    /// Per-selection-atom R2 decision logs, in plan order (recorded only
    /// when the mask was computed with tracing — see
    /// [`AuthorizedEngine::mask_for_plan_traced`]; empty otherwise).
    pub steps: Vec<SelectionStep>,
    /// Rows surviving all selections.
    pub after_selection: Vec<MetaTuple>,
    /// The projection the mask was computed over: the plan's projection
    /// plus, under [`RefinementConfig::extended_masks`], the auxiliary
    /// condition columns appended after it.
    pub mask_projection: Vec<usize>,
    /// This request's R2 decision split across every meta-selection,
    /// indexed `[clear, retain, modify, discard, clear_fallback]`.
    /// Unlike [`AuthTrace::steps`] it is recorded even without decision
    /// logging, at no per-row rendering cost.
    #[serde(default)]
    pub r2_tally: [u64; 5],
}

/// One meta-selection step: the predicate atom applied and what R2
/// decided for each meta-tuple that entered it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SelectionStep {
    /// Index of the atom in the plan's selection predicate.
    pub atom_index: usize,
    /// The atom, rendered against the plan's product schema.
    pub atom: String,
    /// One record per meta-tuple that entered this selection.
    pub decisions: Vec<DecisionRecord>,
}

/// The result of an authorized retrieval.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccessOutcome {
    /// The raw answer `A` (system side — *not* what the user sees).
    pub answer: Relation,
    /// The mask `A'`.
    pub mask: Mask,
    /// The masked answer delivered to the user.
    pub masked: MaskedRelation,
    /// The inferred `permit` statements accompanying the answer.
    pub permits: Vec<PermitStatement>,
    /// Whether the mask grants the entire answer.
    pub full_access: bool,
    /// Intermediate states.
    pub trace: AuthTrace,
}

/// The authorization engine: a database instance plus an authorization
/// store.
#[derive(Debug, Clone, Copy)]
pub struct AuthorizedEngine<'a> {
    db: &'a Database,
    store: &'a AuthStore,
    config: RefinementConfig,
    exec: ExecConfig,
}

impl<'a> AuthorizedEngine<'a> {
    /// Engine with the paper-faithful default configuration.
    pub fn new(db: &'a Database, store: &'a AuthStore) -> Self {
        Self::with_config(db, store, RefinementConfig::default())
    }

    /// Engine with an explicit refinement configuration.
    pub fn with_config(db: &'a Database, store: &'a AuthStore, config: RefinementConfig) -> Self {
        Self::with_exec(db, store, config, ExecConfig::sequential())
    }

    /// Engine with explicit refinement *and* executor configurations.
    /// The executor never changes results — only how many worker
    /// threads the mask pipeline and data-side plans partition across.
    pub fn with_exec(
        db: &'a Database,
        store: &'a AuthStore,
        config: RefinementConfig,
        exec: ExecConfig,
    ) -> Self {
        AuthorizedEngine {
            db,
            store,
            config,
            exec,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> RefinementConfig {
        self.config
    }

    /// The active executor configuration.
    pub fn exec(&self) -> ExecConfig {
        self.exec
    }

    /// Authorize and execute a `retrieve` statement for `user`.
    pub fn retrieve(&self, user: &str, query: &ConjunctiveQuery) -> CoreResult<AccessOutcome> {
        let plan = {
            let _stage = motro_obs::profile::stage("compile");
            compile(query, self.db.schema())?
        };
        self.retrieve_plan(user, &plan)
    }

    /// Authorize and execute a pre-compiled canonical plan. The data
    /// side runs through the optimizing executor (the paper: "for the
    /// actual relations, where optimality is essential, a different
    /// strategy may be implemented"); the meta side keeps the canonical
    /// strategy the theorem requires.
    pub fn retrieve_plan(&self, user: &str, plan: &CanonicalPlan) -> CoreResult<AccessOutcome> {
        let answer = {
            let _stage = motro_obs::profile::stage("plan.execute");
            let answer = motro_rel::execute_optimized_with(plan, self.db, &self.exec)?;
            motro_obs::profile::annotate("rows", answer.len());
            answer
        };
        let (mask, trace) = {
            let _stage = motro_obs::profile::stage("mask.compute");
            let (mask, trace) = self.mask_for_plan(user, plan)?;
            motro_obs::profile::annotate("mask_tuples", mask.len());
            (mask, trace)
        };
        let requested = plan.projection.len();
        let masked = if trace.mask_projection.len() == requested {
            mask.apply(&answer)
        } else {
            // Extended mask (Section 6): evaluate over the widened
            // answer, then trim the auxiliary columns and re-apply set
            // semantics over what the user actually sees.
            let extended_plan = CanonicalPlan {
                relations: plan.relations.clone(),
                selection: plan.selection.clone(),
                projection: trace.mask_projection.clone(),
            };
            let extended_answer = {
                let _stage = motro_obs::profile::stage("plan.execute.extended");
                motro_rel::execute_optimized_with(&extended_plan, self.db, &self.exec)?
            };
            let wide = mask.apply(&extended_answer);
            let mut rows: Vec<Vec<Option<motro_rel::Value>>> = Vec::new();
            let mut withheld_rows = 0usize;
            for mut row in wide.rows {
                row.truncate(requested);
                if row.iter().any(Option::is_some) {
                    rows.push(row);
                } else {
                    withheld_rows += 1;
                }
            }
            let mut seen = std::collections::BTreeSet::new();
            rows.retain(|r| seen.insert(format!("{r:?}")));
            let _ = withheld_rows;
            let withheld = answer.len().saturating_sub(rows.len());
            crate::mask::MaskedRelation {
                schema: plan.output_schema(self.store.scheme())?,
                rows,
                withheld,
            }
        };
        let permits = mask.describe();
        let full_access = mask.is_full();
        Ok(AccessOutcome {
            answer,
            mask,
            masked,
            permits,
            full_access,
            trace,
        })
    }

    /// Compute only the mask (`A'`) for a plan — the meta side of
    /// Figure 2, used on its own by the scaling benchmarks.
    pub fn mask_for_plan(&self, user: &str, plan: &CanonicalPlan) -> CoreResult<(Mask, AuthTrace)> {
        self.mask_for_plan_inner(user, plan, false)
    }

    /// [`Self::mask_for_plan`] with R2 decision logging: the returned
    /// trace's [`AuthTrace::steps`] records, per selection atom, what
    /// the four-case analysis decided for every meta-tuple. Used by the
    /// EXPLAIN layer; slightly more expensive (renders each meta-tuple).
    pub fn mask_for_plan_traced(
        &self,
        user: &str,
        plan: &CanonicalPlan,
    ) -> CoreResult<(Mask, AuthTrace)> {
        self.mask_for_plan_inner(user, plan, true)
    }

    fn mask_for_plan_inner(
        &self,
        user: &str,
        plan: &CanonicalPlan,
        logged: bool,
    ) -> CoreResult<(Mask, AuthTrace)> {
        let t_eval = motro_obs::start();
        // Clean slate for this request's R2 split (the thread-local may
        // carry counts from an earlier evaluation on this thread whose
        // caller never collected them).
        let _ = crate::meta_algebra::take_r2_tally();
        let scheme = self.store.scheme();
        plan.validate(scheme)?;
        let prod_schema = plan.product_schema(scheme)?;
        let query_rels: BTreeSet<String> = plan.relations.iter().cloned().collect();

        // Step 1: prune per factor.
        let stage_candidates = motro_obs::profile::stage("meta.candidates");
        let mut candidates: Vec<(String, Vec<MetaTuple>)> = Vec::new();
        let mut arities = Vec::with_capacity(plan.relations.len());
        for rel in &plan.relations {
            let mut cands = self.store.candidates(user, rel, &query_rels);
            if !self.config.self_join {
                cands.retain(|t| t.provenance.len() <= 1);
            }
            arities.push(scheme.schema_of(rel)?.arity());
            candidates.push((rel.clone(), cands));
        }
        let candidate_total: u64 = candidates.iter().map(|(_, c)| c.len() as u64).sum();
        motro_obs::counter!("meta.candidates.tuples").add(candidate_total);
        motro_obs::profile::annotate("tuples", candidate_total);
        motro_obs::profile::annotate("factors", candidates.len());
        drop(stage_candidates);

        // Step 2: meta-product (with R1 padding), then closure pruning.
        let stage_product = motro_obs::profile::stage("meta.product");
        let factor_lists: Vec<Vec<MetaTuple>> = candidates.iter().map(|(_, c)| c.clone()).collect();
        let mut rows = meta_product_par(
            &factor_lists,
            &arities,
            self.config.product_padding,
            &self.exec,
        );
        let product_len = rows.len();
        motro_obs::counter!("meta.product.rows").add(product_len as u64);
        motro_obs::profile::annotate("rows", product_len);
        drop(stage_product);
        let stage_prune = motro_obs::profile::stage("closure.prune");
        if self.config.closure_pruning {
            let parts = self.exec.partitions_for(rows.len());
            if parts <= 1 {
                rows.retain(|t| self.store.is_closed(t));
            } else {
                // Closure checks are per-tuple and read-only over the
                // store; filtered chunks concatenate in order, matching
                // the sequential retain exactly.
                let store = self.store;
                let kept = self.exec.map_chunked(rows, parts, "meta_prune", |chunk| {
                    chunk
                        .into_iter()
                        .filter(|t| store.is_closed(t))
                        .collect::<Vec<MetaTuple>>()
                });
                let t = motro_obs::start();
                rows = kept.into_iter().flatten().collect();
                motro_obs::histogram!("exec.steal_or_merge_ns").record_since(t);
            }
        }
        motro_obs::counter!("meta.product.pruned").add((product_len - rows.len()) as u64);
        motro_obs::profile::annotate("pruned", product_len - rows.len());
        motro_obs::profile::annotate("kept", rows.len());
        drop(stage_prune);
        let product = rows.clone();

        // Step 3: meta-selections.
        let mode = if self.config.four_case_selection {
            SelectMode::FourCase
        } else {
            SelectMode::Basic
        };
        let mut next_var = self.store.next_var_hint();
        let mut steps: Vec<SelectionStep> = Vec::new();
        let stage_select = motro_obs::profile::stage("meta.select");
        motro_obs::profile::annotate("atoms", plan.selection.atoms.len());
        motro_obs::profile::annotate("rows_in", rows.len());
        motro_obs::counter!("meta.select.in").add(rows.len() as u64);
        for (atom_index, atom) in plan.selection.atoms.iter().enumerate() {
            let mut decisions = if logged { Some(Vec::new()) } else { None };
            rows = meta_select_logged_par(
                rows,
                atom,
                mode,
                &mut next_var,
                decisions.as_mut(),
                &self.exec,
            );
            if let Some(decisions) = decisions {
                steps.push(SelectionStep {
                    atom_index,
                    atom: render_atom(atom, &prod_schema),
                    decisions,
                });
            }
            if rows.is_empty() {
                break;
            }
        }
        motro_obs::counter!("meta.select.out").add(rows.len() as u64);
        motro_obs::profile::annotate("rows_out", rows.len());
        drop(stage_select);
        let after_selection = rows.clone();

        // Step 4: meta-projection. Under the Section 6 extension, first
        // widen the projection with the condition columns that would
        // otherwise kill surviving meta-tuples.
        let mut mask_projection = plan.projection.clone();
        if self.config.extended_masks {
            let kept: std::collections::BTreeSet<usize> = mask_projection.iter().copied().collect();
            let mut aux = std::collections::BTreeSet::new();
            for row in &rows {
                let mut r = row.clone();
                r.simplify();
                for (i, c) in r.cells.iter().enumerate() {
                    if !kept.contains(&i) && !c.is_blank() {
                        aux.insert(i);
                    }
                }
            }
            mask_projection.extend(aux);
        }
        let stage_project = motro_obs::profile::stage("meta.project");
        motro_obs::profile::annotate("rows_in", rows.len());
        motro_obs::counter!("meta.project.in").add(rows.len() as u64);
        rows = meta_project(rows, &mask_projection);
        rows.retain(MetaTuple::any_starred);
        motro_obs::counter!("meta.project.out").add(rows.len() as u64);
        motro_obs::profile::annotate("rows_out", rows.len());
        drop(stage_project);

        let schema = prod_schema.project(&mask_projection);
        let mask = Mask::new(schema, rows);
        let trace = AuthTrace {
            plan: plan.clone(),
            candidates,
            product_len,
            product,
            steps,
            after_selection,
            mask_projection,
            r2_tally: crate::meta_algebra::take_r2_tally(),
        };
        motro_obs::histogram!("meta.eval_ns").record_since(t_eval);
        Ok((mask, trace))
    }

    /// Audit a `retrieve` for `user`: run the authorization with R2
    /// decision logging and explain every cell of the answer — which
    /// mask tuples granted it, or why each declined.
    pub fn explain(
        &self,
        user: &str,
        query: &ConjunctiveQuery,
    ) -> CoreResult<crate::explain::AuthExplain> {
        let plan = compile(query, self.db.schema())?;
        self.explain_plan(user, &plan)
    }

    /// [`Self::explain`] over a pre-compiled plan.
    pub fn explain_plan(
        &self,
        user: &str,
        plan: &CanonicalPlan,
    ) -> CoreResult<crate::explain::AuthExplain> {
        let (mask, trace) = self.mask_for_plan_traced(user, plan)?;
        // The mask's schema may be wider than the request (extended
        // masks): evaluate the answer over the mask projection so every
        // mask column has a value to explain against.
        let eval_plan = if trace.mask_projection == plan.projection {
            plan.clone()
        } else {
            CanonicalPlan {
                relations: plan.relations.clone(),
                selection: plan.selection.clone(),
                projection: trace.mask_projection.clone(),
            }
        };
        let answer = motro_rel::execute_optimized_with(&eval_plan, self.db, &self.exec)?;
        Ok(crate::explain::build(user, &mask, &trace, &answer))
    }

    /// Convenience: is `user` allowed to see *anything* of `query`?
    pub fn is_permitted(&self, user: &str, query: &ConjunctiveQuery) -> CoreResult<bool> {
        let plan = compile(query, self.db.schema())?;
        let (mask, _) = self.mask_for_plan(user, &plan)?;
        Ok(!mask.is_empty())
    }

    /// The database this engine reads.
    pub fn database(&self) -> &Database {
        self.db
    }

    /// The authorization store this engine consults.
    pub fn auth_store(&self) -> &AuthStore {
        self.store
    }
}

/// Render a predicate atom with product-schema column names
/// (`PROJECT.BUDGET >= 250000` rather than `#3 >= 250000`).
pub(crate) fn render_atom(
    atom: &motro_rel::PredicateAtom,
    schema: &motro_rel::RelSchema,
) -> String {
    let lhs = schema.column(atom.lhs).qual.to_string();
    match &atom.rhs {
        motro_rel::Term::Col(j) => format!("{} {} {}", lhs, atom.op, schema.column(*j).qual),
        motro_rel::Term::Const(v) => format!("{} {} {}", lhs, atom.op, v),
    }
}

impl AccessOutcome {
    /// Render the user-visible part: the masked table plus the inferred
    /// permit statements (the paper's promised front-end output).
    pub fn render(&self) -> String {
        let mut out = self.masked.to_table();
        if self.full_access {
            out.push_str("(full access: no permit statements)\n");
        } else if self.permits.is_empty() {
            out.push_str("(no portion of this answer is permitted)\n");
        } else {
            for p in &self.permits {
                out.push_str(&p.to_string());
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use motro_rel::{CompOp, Value};
    use motro_views::AttrRef;

    fn setup() -> (Database, AuthStore) {
        (fixtures::paper_database(), fixtures::paper_store())
    }

    /// Paper Example 1: Brown retrieves numbers and sponsors of large
    /// projects; mask is (*, Acme*); only the Acme project survives.
    #[test]
    fn example_1_brown_large_projects() {
        let (db, store) = setup();
        let engine = AuthorizedEngine::new(&db, &store);
        let q = ConjunctiveQuery::retrieve()
            .target("PROJECT", "NUMBER")
            .target("PROJECT", "SPONSOR")
            .where_const(AttrRef::new("PROJECT", "BUDGET"), CompOp::Ge, 250_000)
            .build();
        let out = engine.retrieve("Brown", &q).unwrap();
        // Raw answer: bq-45/Acme and sv-72/Apex.
        assert_eq!(out.answer.len(), 2);
        // Mask: one tuple (*, Acme*).
        assert_eq!(out.mask.len(), 1);
        let mt = &out.mask.tuples[0];
        assert_eq!(mt.cells[0].render(), "*");
        assert_eq!(mt.cells[1].render(), "Acme*");
        // Delivered: only the Acme row, both cells visible.
        assert_eq!(out.masked.len(), 1);
        assert_eq!(out.masked.withheld, 1);
        assert_eq!(out.masked.rows[0][0], Some(Value::str("bq-45")));
        assert_eq!(out.masked.rows[0][1], Some(Value::str("Acme")));
        // Inferred statement.
        assert_eq!(out.permits.len(), 1);
        assert_eq!(
            out.permits[0].to_string(),
            "permit (NUMBER, SPONSOR) where SPONSOR = Acme"
        );
        assert!(!out.full_access);
    }

    /// Paper Example 2: Klein retrieves names and salaries of engineers
    /// on very large projects; mask is (*, ⊔) — names only.
    #[test]
    fn example_2_klein_engineers() {
        let (db, store) = setup();
        let engine = AuthorizedEngine::new(&db, &store);
        let q = ConjunctiveQuery::retrieve()
            .target("EMPLOYEE", "NAME")
            .target("EMPLOYEE", "SALARY")
            .where_const(AttrRef::new("EMPLOYEE", "TITLE"), CompOp::Eq, "engineer")
            .where_attr(
                AttrRef::new("EMPLOYEE", "NAME"),
                CompOp::Eq,
                AttrRef::new("ASSIGNMENT", "E_NAME"),
            )
            .where_attr(
                AttrRef::new("ASSIGNMENT", "P_NO"),
                CompOp::Eq,
                AttrRef::new("PROJECT", "NUMBER"),
            )
            .where_const(AttrRef::new("PROJECT", "BUDGET"), CompOp::Gt, 300_000)
            .build();
        let out = engine.retrieve("Klein", &q).unwrap();
        // Raw answer: Brown (engineer on sv-72, 450k).
        assert_eq!(out.answer.len(), 1);
        // Mask: names visible, salaries not.
        assert_eq!(out.mask.len(), 1);
        let mt = &out.mask.tuples[0];
        assert_eq!(mt.cells[0].render(), "*");
        assert_eq!(mt.cells[1].render(), "");
        assert!(mt.constraints.is_empty(), "variables were cleared");
        // Delivered row: name visible, salary masked.
        assert_eq!(out.masked.len(), 1);
        assert_eq!(out.masked.rows[0][0], Some(Value::str("Brown")));
        assert_eq!(out.masked.rows[0][1], None);
        assert_eq!(out.permits.len(), 1);
        assert_eq!(out.permits[0].to_string(), "permit (NAME)");
    }

    /// Paper Example 3: Brown retrieves names and salaries of employees
    /// with the same title; the SAE⋈EST self-join grants the entire
    /// answer, with no permit statements.
    #[test]
    fn example_3_brown_same_title_full_access() {
        let (db, store) = setup();
        let engine = AuthorizedEngine::new(&db, &store);
        let q = ConjunctiveQuery::retrieve()
            .target_occ("EMPLOYEE", 1, "NAME")
            .target_occ("EMPLOYEE", 1, "SALARY")
            .target_occ("EMPLOYEE", 2, "NAME")
            .target_occ("EMPLOYEE", 2, "SALARY")
            .where_attr(
                AttrRef::occ("EMPLOYEE", 1, "TITLE"),
                CompOp::Eq,
                AttrRef::occ("EMPLOYEE", 2, "TITLE"),
            )
            .build();
        let out = engine.retrieve("Brown", &q).unwrap();
        assert!(out.full_access, "mask: {:?}", out.mask.tuples);
        assert!(out.permits.is_empty());
        assert_eq!(out.masked.len(), out.answer.len());
        assert_eq!(out.masked.withheld, 0);
    }

    /// Example 3 without the self-join refinement: only names come
    /// through (via EST), salaries are masked.
    #[test]
    fn example_3_without_selfjoin_is_partial() {
        let (db, store) = setup();
        let cfg = RefinementConfig {
            self_join: false,
            ..RefinementConfig::default()
        };
        let engine = AuthorizedEngine::with_config(&db, &store, cfg);
        let q = ConjunctiveQuery::retrieve()
            .target_occ("EMPLOYEE", 1, "NAME")
            .target_occ("EMPLOYEE", 1, "SALARY")
            .target_occ("EMPLOYEE", 2, "NAME")
            .target_occ("EMPLOYEE", 2, "SALARY")
            .where_attr(
                AttrRef::occ("EMPLOYEE", 1, "TITLE"),
                CompOp::Eq,
                AttrRef::occ("EMPLOYEE", 2, "TITLE"),
            )
            .build();
        let out = engine.retrieve("Brown", &q).unwrap();
        assert!(!out.full_access);
        // Names visible somewhere, salaries nowhere.
        let vis: Vec<bool> = out.mask.tuples.iter().fold(vec![false; 4], |mut acc, t| {
            for (i, c) in t.cells.iter().enumerate() {
                acc[i] |= c.starred;
            }
            acc
        });
        assert!(vis[0] && vis[2], "names visible");
        assert!(!vis[1] && !vis[3], "salaries masked");
    }

    /// A user with no grants gets an empty mask: everything withheld.
    #[test]
    fn no_grants_no_data() {
        let (db, store) = setup();
        let engine = AuthorizedEngine::new(&db, &store);
        let q = ConjunctiveQuery::retrieve()
            .target("PROJECT", "NUMBER")
            .build();
        let out = engine.retrieve("Nobody", &q).unwrap();
        assert!(out.mask.is_empty());
        assert!(out.masked.is_empty());
        assert_eq!(out.masked.withheld, 3);
        assert!(!engine.is_permitted("Nobody", &q).unwrap());
    }

    /// Klein's subview query from Section 3: employees on projects with
    /// budgets over $500,000 — a view of ELP, authorized in full (names
    /// requested only).
    #[test]
    fn klein_stricter_budget_subview() {
        let (db, store) = setup();
        let engine = AuthorizedEngine::new(&db, &store);
        let q = ConjunctiveQuery::retrieve()
            .target("EMPLOYEE", "NAME")
            .where_attr(
                AttrRef::new("EMPLOYEE", "NAME"),
                CompOp::Eq,
                AttrRef::new("ASSIGNMENT", "E_NAME"),
            )
            .where_attr(
                AttrRef::new("ASSIGNMENT", "P_NO"),
                CompOp::Eq,
                AttrRef::new("PROJECT", "NUMBER"),
            )
            .where_const(AttrRef::new("PROJECT", "BUDGET"), CompOp::Gt, 500_000)
            .build();
        let out = engine.retrieve("Klein", &q).unwrap();
        assert!(out.full_access, "mask {:?}", out.mask.tuples);
    }

    /// The trace captures the paper's intermediate tables.
    #[test]
    fn trace_reports_intermediates() {
        let (db, store) = setup();
        let engine = AuthorizedEngine::new(&db, &store);
        let q = ConjunctiveQuery::retrieve()
            .target("PROJECT", "NUMBER")
            .target("PROJECT", "SPONSOR")
            .where_const(AttrRef::new("PROJECT", "BUDGET"), CompOp::Ge, 250_000)
            .build();
        let out = engine.retrieve("Brown", &q).unwrap();
        assert_eq!(out.trace.candidates.len(), 1);
        assert_eq!(out.trace.candidates[0].0, "PROJECT");
        assert_eq!(out.trace.candidates[0].1.len(), 1); // PSA only
        assert_eq!(out.trace.product.len(), 1);
        assert_eq!(out.trace.after_selection.len(), 1);
    }

    /// The per-request R2 tally agrees with the logged decision records
    /// case by case, at every worker count.
    #[test]
    fn r2_tally_matches_logged_decisions() {
        let (db, store) = setup();
        let q = ConjunctiveQuery::retrieve()
            .target("EMPLOYEE", "NAME")
            .target("EMPLOYEE", "SALARY")
            .where_const(AttrRef::new("EMPLOYEE", "TITLE"), CompOp::Eq, "engineer")
            .where_attr(
                AttrRef::new("EMPLOYEE", "NAME"),
                CompOp::Eq,
                AttrRef::new("ASSIGNMENT", "E_NAME"),
            )
            .where_attr(
                AttrRef::new("ASSIGNMENT", "P_NO"),
                CompOp::Eq,
                AttrRef::new("PROJECT", "NUMBER"),
            )
            .where_const(AttrRef::new("PROJECT", "BUDGET"), CompOp::Gt, 300_000)
            .build();
        let plan = compile(&q, db.schema()).unwrap();
        let mut oracle: Option<[u64; 5]> = None;
        for workers in [1usize, 4] {
            let engine = AuthorizedEngine::with_exec(
                &db,
                &store,
                RefinementConfig::default(),
                ExecConfig::with_workers(workers),
            );
            let (_, trace) = engine.mask_for_plan_traced("Klein", &plan).unwrap();
            let mut from_log = [0u64; 5];
            for step in &trace.steps {
                for d in &step.decisions {
                    let i = match d.case {
                        crate::meta_algebra::R2Decision::Clear => 0,
                        crate::meta_algebra::R2Decision::Retain => 1,
                        crate::meta_algebra::R2Decision::Modify => 2,
                        crate::meta_algebra::R2Decision::Discard => 3,
                        crate::meta_algebra::R2Decision::ClearFallback => 4,
                    };
                    from_log[i] += 1;
                }
            }
            assert_eq!(trace.r2_tally, from_log, "workers={workers}");
            assert!(trace.r2_tally.iter().sum::<u64>() > 0);
            match &oracle {
                None => oracle = Some(trace.r2_tally),
                Some(o) => assert_eq!(*o, trace.r2_tally, "workers={workers}"),
            }
        }
    }

    /// Basic (unrefined) selection still yields a sound, if less tidy,
    /// mask for Example 1.
    #[test]
    fn example_1_basic_mode() {
        let (db, store) = setup();
        let engine = AuthorizedEngine::with_config(&db, &store, RefinementConfig::plain());
        let q = ConjunctiveQuery::retrieve()
            .target("PROJECT", "NUMBER")
            .target("PROJECT", "SPONSOR")
            .where_const(AttrRef::new("PROJECT", "BUDGET"), CompOp::Ge, 250_000)
            .build();
        let out = engine.retrieve("Brown", &q).unwrap();
        // Basic mode conjoins BUDGET ≥ 250k onto PSA's blank BUDGET
        // field, which the projection then kills: PSA's projection
        // includes BUDGET, so the paper's preferred view definitions
        // (selection attributes among the projection attributes) still
        // deliver the Acme row... unless the conjunction blocked it.
        // Either way, nothing *unauthorized* is delivered.
        for row in &out.masked.rows {
            assert_eq!(row[1], Some(Value::str("Acme")));
        }
    }
}
