//! Meta-relations: the storage form of view definitions.
//!
//! For each database relation `R` the model adds a meta-relation `R'`
//! whose scheme mirrors `R` plus a `VIEW` attribute (paper, Section 3).
//! [`MetaRelation`] holds the stored meta-tuples of one relation and
//! renders the paper's Figure 1 tables (optionally combined with the
//! actual relation's rows, as the paper displays them).

use crate::metatuple::{MetaTuple, TupleId};
use motro_rel::{RelSchema, Relation};
use serde::{Deserialize, Serialize};

/// The meta-relation `R'` of one base relation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetaRelation {
    /// Name of the base relation `R`.
    pub rel: String,
    /// Scheme of `R` (the `VIEW` attribute is implicit — it is the
    /// provenance of each meta-tuple).
    pub schema: RelSchema,
    /// The stored meta-tuples, in insertion order.
    pub tuples: Vec<MetaTuple>,
}

impl MetaRelation {
    /// An empty meta-relation for `rel`.
    pub fn new(rel: &str, schema: RelSchema) -> Self {
        MetaRelation {
            rel: rel.to_owned(),
            schema,
            tuples: Vec::new(),
        }
    }

    /// Number of stored meta-tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether there are no meta-tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Remove every meta-tuple covering any of `ids` (used when a view
    /// is dropped).
    pub fn remove_covering(&mut self, ids: &std::collections::BTreeSet<TupleId>) {
        self.tuples.retain(|t| t.covers.is_disjoint(ids));
    }

    /// Render the meta-relation in the paper's tabular style, optionally
    /// preceded by the actual relation's rows (Figure 1 shows "each pair
    /// of relations R, R' ... as a single contiguous table").
    pub fn to_table(&self, actual: Option<&Relation>) -> String {
        let mut headers = vec!["VIEW".to_owned()];
        headers.extend(self.schema.display_headers());
        let mut rows: Vec<Vec<String>> = Vec::new();
        if let Some(rel) = actual {
            for t in rel.rows() {
                let mut row = vec![String::new()];
                row.extend(t.values().iter().map(|v| v.to_string()));
                rows.push(row);
            }
        }
        for t in &self.tuples {
            let mut row = vec![t.render_provenance()];
            row.extend(t.cells.iter().map(|c| c.render()));
            rows.push(row);
        }
        render_table(&headers, &rows)
    }
}

/// Shared ASCII-table renderer used by the meta displays.
pub(crate) fn render_table(headers: &[String], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    for row in rows {
        for (i, c) in row.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let mut out = String::new();
    let rule = |out: &mut String| {
        out.push('+');
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('+');
        }
        out.push('\n');
    };
    rule(&mut out);
    out.push('|');
    for (h, w) in headers.iter().zip(&widths) {
        out.push_str(&format!(" {h:w$} |", w = w));
    }
    out.push('\n');
    rule(&mut out);
    for row in rows {
        out.push('|');
        for (c, w) in row.iter().zip(&widths) {
            out.push_str(&format!(" {c:w$} |", w = w));
        }
        out.push('\n');
    }
    rule(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::ConstraintSet;
    use crate::metatuple::MetaCell;
    use motro_rel::{tuple, Domain};

    fn schema() -> RelSchema {
        RelSchema::base(
            "PROJECT",
            &[
                ("NUMBER", Domain::Str),
                ("SPONSOR", Domain::Str),
                ("BUDGET", Domain::Int),
            ],
        )
    }

    #[test]
    fn table_rendering_mixes_actual_and_meta_rows() {
        let mut mr = MetaRelation::new("PROJECT", schema());
        mr.tuples.push(MetaTuple::new(
            "PSA",
            1,
            vec![
                MetaCell::star(),
                MetaCell::constant("Acme", true),
                MetaCell::star(),
            ],
            ConstraintSet::empty(),
        ));
        let actual = Relation::from_rows(schema(), vec![tuple!["bq-45", "Acme", 300_000]]).unwrap();
        let t = mr.to_table(Some(&actual));
        assert!(t.contains("VIEW"));
        assert!(t.contains("bq-45"));
        assert!(t.contains("PSA"));
        assert!(t.contains("Acme*"));
    }

    #[test]
    fn remove_covering_drops_tuples() {
        let mut mr = MetaRelation::new("PROJECT", schema());
        mr.tuples.push(MetaTuple::new(
            "PSA",
            1,
            vec![MetaCell::star(), MetaCell::star(), MetaCell::star()],
            ConstraintSet::empty(),
        ));
        mr.tuples.push(MetaTuple::new(
            "ELP",
            2,
            vec![MetaCell::star(), MetaCell::blank(), MetaCell::star()],
            ConstraintSet::empty(),
        ));
        mr.remove_covering(&std::collections::BTreeSet::from([1]));
        assert_eq!(mr.len(), 1);
        assert!(mr.tuples[0].provenance.contains("ELP"));
    }
}
