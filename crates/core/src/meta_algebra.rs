//! The extended algebra on meta-relations (paper, Section 4).
//!
//! * **Product** (Definition 1): meta-tuples concatenate pairwise; with
//!   refinement R1, padded rows `(a₁..aₘ, ⊔..⊔)` and `(⊔..⊔, b₁..bₙ)`
//!   are added so subviews of each factor survive projections that drop
//!   the other factor. For the paper's k-ary canonical plans this
//!   generalizes to every non-empty subset of factors.
//! * **Selection** (Definition 2): the selected attributes must be
//!   starred; the field predicate µ meets the query predicate λ. In
//!   [`SelectMode::Basic`] the conjunction µ∧λ is always represented; in
//!   [`SelectMode::FourCase`] the §4.2 refinement applies (clear /
//!   retain / discard / modify), with undecidable forms falling back to
//!   the sound conjoin-or-retain default.
//! * **Projection** (Definition 3): a removed attribute must be blank
//!   (after simplification — an unconstrained variable occurring once is
//!   an anonymous existential, i.e. blank); otherwise the meta-tuple is
//!   discarded.
//!
//! "Replications are removed" throughout: rows identical in cells and
//! constraints merge, unioning their provenance and covers. The union of
//! covers is sound because identical subview definitions witness each
//! other's variable linkage.

use crate::constraint::{ConstraintAtom, Interval, Rhs, SelectionCase};
use crate::metatuple::{CellContent, MetaCell, MetaTuple, VarId};
use motro_rel::{CompOp, ExecConfig, PredicateAtom, Term, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Selection behavior: the plain Definition 2, or the §4.2 refinement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectMode {
    /// Always represent µ ∧ λ.
    Basic,
    /// Case analysis: clear / retain / discard / modify.
    FourCase,
}

/// The outcome of one R2 (§4.2) selection decision on one meta-tuple,
/// as recorded for the tallies and the EXPLAIN trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum R2Decision {
    /// λ ⊨ µ: the query predicate implies the field condition — the
    /// condition is erased (the cell becomes blank).
    Clear,
    /// µ ⊨ λ: the field condition implies the query predicate — the
    /// meta-tuple survives unchanged.
    Retain,
    /// µ and λ overlap: the conjunction µ ∧ λ is represented (a
    /// constraint is added, a variable bound, or a cell linked).
    Modify,
    /// µ ∧ λ is unsatisfiable (or a selected attribute is not starred):
    /// the meta-tuple is dropped.
    Discard,
    /// λ ⊨ µ held but the variable could not be cleared (it links other
    /// cells or variables), so the sound retain fallback was taken.
    ClearFallback,
}

impl R2Decision {
    /// Stable lower-case label (used in metrics names and JSON).
    pub fn label(self) -> &'static str {
        match self {
            R2Decision::Clear => "clear",
            R2Decision::Retain => "retain",
            R2Decision::Modify => "modify",
            R2Decision::Discard => "discard",
            R2Decision::ClearFallback => "clear-fallback",
        }
    }
}

impl fmt::Display for R2Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One recorded R2 decision: which meta-tuple (by provenance and
/// rendered form), what the case analysis decided, and what survived.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionRecord {
    /// Views the meta-tuple derives from.
    pub provenance: Vec<String>,
    /// The meta-tuple as it entered the selection.
    pub before: String,
    /// The case taken.
    pub case: R2Decision,
    /// The surviving meta-tuple (None when discarded).
    pub after: Option<String>,
}

/// Merge replications: rows equal in (cells, constraints) are unioned
/// over provenance and covers.
pub fn dedup_merge(rows: Vec<MetaTuple>) -> Vec<MetaTuple> {
    let mut out: Vec<MetaTuple> = Vec::with_capacity(rows.len());
    let mut index: HashMap<(Vec<MetaCell>, Vec<ConstraintAtom>), usize> = HashMap::new();
    for t in rows {
        let key = (t.cells.clone(), t.constraints.atoms().to_vec());
        match index.get(&key) {
            Some(&i) => {
                let existing = &mut out[i];
                existing.provenance.extend(t.provenance.iter().cloned());
                existing.covers.extend(t.covers.iter().copied());
            }
            None => {
                index.insert(key, out.len());
                out.push(t);
            }
        }
    }
    out
}

/// The k-ary meta-product over per-factor candidate lists.
///
/// `arities[i]` is the arity of factor `i` (needed to emit blank padding
/// for factors that contribute no meta-tuple). With `padding` off, only
/// full combinations are produced (Definition 1); with it on, every
/// non-empty subset of factors contributes (refinement R1). Replications
/// are removed.
pub fn meta_product(
    factors: &[Vec<MetaTuple>],
    arities: &[usize],
    padding: bool,
) -> Vec<MetaTuple> {
    meta_product_par(factors, arities, padding, &ExecConfig::sequential())
}

/// [`meta_product`] under an explicit executor configuration: the
/// enumeration partitions over the first factor's options, each worker
/// expanding the remaining factors independently, and per-chunk results
/// tree-merge with [`dedup_merge_chunks`]. Because chunks are
/// contiguous and merged in order, the result — including provenance
/// and covers unions, which are order-insensitive sets — is identical
/// to the sequential product at any worker count.
pub fn meta_product_par(
    factors: &[Vec<MetaTuple>],
    arities: &[usize],
    padding: bool,
    exec: &ExecConfig,
) -> Vec<MetaTuple> {
    assert_eq!(factors.len(), arities.len());
    if factors.is_empty() {
        return Vec::new();
    }
    // Estimated combinations decide whether partitioning pays off.
    let pad = usize::from(padding);
    let estimate = factors
        .iter()
        .fold(1usize, |acc, f| acc.saturating_mul(f.len() + pad));
    let parts = if factors.len() < 2 {
        1
    } else {
        exec.partitions_for(estimate)
    };
    // Expand the first factor sequentially (it is just the option list),
    // then fan the rest of the expansion out over its chunks.
    let seeds = expand_factors(vec![None], &factors[..1], &arities[..1], padding);
    let chunks = exec.map_chunked(seeds, parts, "meta_product", |seed_chunk| {
        let rows = expand_factors(seed_chunk, &factors[1..], &arities[1..], padding);
        let full: Vec<MetaTuple> = rows
            .into_iter()
            .flatten()
            // Drop the all-blank row (it reveals nothing and covers
            // nothing).
            .filter(|t| !t.covers.is_empty())
            .collect();
        dedup_merge(full)
    });
    dedup_merge_chunks(chunks, exec)
}

/// The iterative per-factor expansion at the heart of the meta-product:
/// every row in `rows` is extended with each candidate of each factor
/// in turn (plus, with `padding`, the blank option), preserving the
/// lexicographic enumeration order.
fn expand_factors(
    mut rows: Vec<Option<MetaTuple>>,
    factors: &[Vec<MetaTuple>],
    arities: &[usize],
    padding: bool,
) -> Vec<Option<MetaTuple>> {
    for (fi, cands) in factors.iter().enumerate() {
        let blank = MetaTuple {
            provenance: Default::default(),
            covers: Default::default(),
            cells: vec![MetaCell::blank(); arities[fi]],
            constraints: Default::default(),
        };
        let mut next: Vec<Option<MetaTuple>> = Vec::with_capacity(rows.len() * (cands.len() + 1));
        for row in &rows {
            for cand in cands {
                next.push(Some(match row {
                    None => cand.clone(),
                    Some(r) => r.concat(cand),
                }));
            }
            if padding {
                // The blank option models the q₁/q₂ padding rows. The
                // paper's plain product lets an empty candidate list
                // annihilate everything; padding keeps the other
                // factors' subviews alive.
                next.push(Some(match row {
                    None => blank.clone(),
                    Some(r) => r.concat(&blank),
                }));
            }
        }
        rows = next;
        if rows.is_empty() {
            return rows;
        }
    }
    rows
}

/// Merge per-chunk deduplicated results as a parallel tree-reduce.
///
/// `dedup_merge` keeps the first occurrence of each `(cells,
/// constraints)` key and unions provenance/covers (both `BTreeSet`s,
/// hence order-insensitive) into it, which makes pairwise merging
/// associative; reducing adjacent chunks in order therefore yields
/// exactly `dedup_merge` of the full concatenation.
pub fn dedup_merge_chunks(chunks: Vec<Vec<MetaTuple>>, exec: &ExecConfig) -> Vec<MetaTuple> {
    let t = motro_obs::start();
    let out = merge_tree(chunks, exec.workers.max(1));
    motro_obs::histogram!("exec.steal_or_merge_ns").record_since(t);
    out
}

fn merge_tree(mut chunks: Vec<Vec<MetaTuple>>, workers: usize) -> Vec<MetaTuple> {
    match chunks.len() {
        0 => Vec::new(),
        1 => dedup_merge(chunks.pop().expect("one chunk")),
        _ => {
            let right = chunks.split_off(chunks.len() / 2);
            let left = chunks;
            let lw = workers / 2;
            let rw = workers - lw;
            let (l, r) = if lw >= 1 && rw >= 1 && workers > 1 {
                std::thread::scope(|scope| {
                    let handle = scope.spawn(move || merge_tree(right, rw));
                    let l = merge_tree(left, lw.max(1));
                    (l, handle.join().expect("merge worker completed"))
                })
            } else {
                (merge_tree(left, 1), merge_tree(right, 1))
            };
            let mut all = l;
            all.extend(r);
            dedup_merge(all)
        }
    }
}

/// Can variable `x` be *cleared* from `row`? Clearing drops `x`'s cells
/// and atoms, so it requires `x` to occur in at most `max_cells` cells
/// and to have no var–var atoms (those link other variables).
fn clearable(row: &MetaTuple, x: VarId, max_cells: usize) -> bool {
    if row.var_occurrences(x) > max_cells {
        return false;
    }
    row.constraints
        .atoms()
        .iter()
        .filter(|a| a.mentions(x))
        .all(|a| matches!(a.rhs, Rhs::Const(_)) && a.lhs == x)
}

/// Meta-selection by one primitive predicate atom. Returns the surviving
/// (possibly modified) rows, replications removed.
///
/// `next_var` allocates fresh variables when Basic mode must represent a
/// non-equality predicate on a blank field.
pub fn meta_select(
    rows: Vec<MetaTuple>,
    atom: &PredicateAtom,
    mode: SelectMode,
    next_var: &mut VarId,
) -> Vec<MetaTuple> {
    meta_select_logged(rows, atom, mode, next_var, None)
}

/// [`meta_select`] with per-meta-tuple decision logging: when `log` is
/// given, one [`DecisionRecord`] is appended per input row. Decision
/// tallies always go to the `meta.r2.*` metrics counters.
pub fn meta_select_logged(
    rows: Vec<MetaTuple>,
    atom: &PredicateAtom,
    mode: SelectMode,
    next_var: &mut VarId,
    mut log: Option<&mut Vec<DecisionRecord>>,
) -> Vec<MetaTuple> {
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        let before = log
            .as_ref()
            .map(|_| (row.provenance.iter().cloned().collect(), row.to_string()));
        let (survivor, case) = select_one(row, atom, mode, next_var);
        tally(case);
        if let Some(log) = log.as_deref_mut() {
            match before {
                Some((provenance, before)) => log.push(DecisionRecord {
                    provenance,
                    before,
                    case,
                    after: survivor.as_ref().map(MetaTuple::to_string),
                }),
                // The pre-image was not rendered (invariant slip between
                // the two `log` probes). Drop this record and count it
                // rather than panicking a server worker mid-request.
                None => motro_obs::counter!("meta.r2.log_dropped").inc(),
            }
        }
        if let Some(t) = survivor {
            out.push(t);
        }
    }
    dedup_merge(out)
}

/// [`meta_select_logged`] under an explicit executor configuration:
/// rows partition into contiguous chunks decided independently by
/// scoped workers, per-chunk decision logs concatenate in chunk order
/// (reproducing the sequential log exactly), and survivors tree-merge
/// with [`dedup_merge_chunks`].
///
/// Only [`SelectMode::FourCase`] — the default — parallelizes:
/// Basic-mode selection allocates fresh variables row by row from
/// `next_var`, and renumbering under partitioning would diverge from
/// the sequential oracle. Four-case decisions never allocate, so the
/// counter is untouched either way.
pub fn meta_select_logged_par(
    rows: Vec<MetaTuple>,
    atom: &PredicateAtom,
    mode: SelectMode,
    next_var: &mut VarId,
    log: Option<&mut Vec<DecisionRecord>>,
    exec: &ExecConfig,
) -> Vec<MetaTuple> {
    let parts = exec.partitions_for(rows.len());
    if parts <= 1 || !matches!(mode, SelectMode::FourCase) {
        return meta_select_logged(rows, atom, mode, next_var, log);
    }
    let logging = log.is_some();
    let start_var = *next_var;
    let mut results: Vec<(Vec<MetaTuple>, Vec<DecisionRecord>, [u64; 5])> =
        exec.map_chunked(rows, parts, "meta_select", |chunk| {
            // Isolate this chunk's R2 tally so it can be handed back to
            // the calling thread: save whatever the executing thread had
            // accumulated, measure the chunk's delta, then restore the
            // prior counts (a chunk may run inline on the caller).
            let prior = take_r2_tally();
            let mut local_log: Vec<DecisionRecord> = Vec::new();
            let log_opt = if logging { Some(&mut local_log) } else { None };
            let mut nv = start_var;
            let survivors = meta_select_logged(chunk, atom, mode, &mut nv, log_opt);
            debug_assert_eq!(nv, start_var, "four-case selection allocates no variables");
            let delta = take_r2_tally();
            add_r2_tally(&prior);
            (survivors, local_log, delta)
        });
    if let Some(log) = log {
        for (_, chunk_log, _) in &mut results {
            log.append(chunk_log);
        }
    }
    for (_, _, delta) in &results {
        add_r2_tally(delta);
    }
    let survivors: Vec<Vec<MetaTuple>> = results.into_iter().map(|(s, _, _)| s).collect();
    dedup_merge_chunks(survivors, exec)
}

thread_local! {
    /// Per-thread R2 decision tally, indexed
    /// `[clear, retain, modify, discard, clear_fallback]`. The global
    /// `meta.r2.*` counters aggregate across requests; this cell lets a
    /// single authorization attribute its own decisions (the insight
    /// rollups) without a lock on the hot selection path.
    static R2_TALLY: std::cell::Cell<[u64; 5]> = const { std::cell::Cell::new([0; 5]) };
}

/// Read **and reset** the calling thread's R2 decision tally:
/// `[clear, retain, modify, discard, clear_fallback]` counts
/// accumulated by every meta-selection on this thread since the last
/// take. [`meta_select_logged_par`] merges its workers' tallies back
/// into the caller, so taking around a full mask evaluation yields the
/// request's complete split at any worker count.
pub fn take_r2_tally() -> [u64; 5] {
    R2_TALLY.with(|t| t.replace([0; 5]))
}

/// Fold a tally delta into the calling thread's cell.
fn add_r2_tally(delta: &[u64; 5]) {
    R2_TALLY.with(|t| {
        let mut cur = t.get();
        for (c, d) in cur.iter_mut().zip(delta) {
            *c += d;
        }
        t.set(cur);
    });
}

fn tally(case: R2Decision) {
    let idx = match case {
        R2Decision::Clear => {
            motro_obs::counter!("meta.r2.clear").inc();
            0
        }
        R2Decision::Retain => {
            motro_obs::counter!("meta.r2.retain").inc();
            1
        }
        R2Decision::Modify => {
            motro_obs::counter!("meta.r2.modify").inc();
            2
        }
        R2Decision::Discard => {
            motro_obs::counter!("meta.r2.discard").inc();
            3
        }
        R2Decision::ClearFallback => {
            motro_obs::counter!("meta.r2.clear_fallback").inc();
            4
        }
    };
    R2_TALLY.with(|t| {
        let mut cur = t.get();
        cur[idx] += 1;
        t.set(cur);
    });
}

fn fresh(next_var: &mut VarId) -> VarId {
    let x = *next_var;
    *next_var += 1;
    x
}

fn select_one(
    mut row: MetaTuple,
    atom: &PredicateAtom,
    mode: SelectMode,
    next_var: &mut VarId,
) -> (Option<MetaTuple>, R2Decision) {
    match &atom.rhs {
        Term::Const(c) => {
            // λ = Aᵢ θ c. The selected attribute must be starred.
            if !row.cells[atom.lhs].starred {
                return (None, R2Decision::Discard);
            }
            match row.cells[atom.lhs].content.clone() {
                CellContent::Blank => {
                    match mode {
                        SelectMode::FourCase => (Some(row), R2Decision::Clear), // λ ⊨ true
                        SelectMode::Basic => {
                            // Represent λ ∧ true = λ.
                            match atom.op {
                                CompOp::Eq => {
                                    row.cells[atom.lhs].content = CellContent::Const(c.clone());
                                }
                                op => {
                                    let x = fresh(next_var);
                                    row.cells[atom.lhs].content = CellContent::Var(x);
                                    row.constraints.push(ConstraintAtom {
                                        lhs: x,
                                        op,
                                        rhs: Rhs::Const(c.clone()),
                                    });
                                }
                            }
                            (Some(row), R2Decision::Modify)
                        }
                    }
                }
                CellContent::Const(k) => {
                    // µ = (Aᵢ = k).
                    if !atom.op.eval(&k, c).unwrap_or(false) {
                        return (None, R2Decision::Discard); // contradiction
                    }
                    // In FourCase mode, λ ⊨ µ clears the constant ("the
                    // variable or the constant is replaced by ⊔"),
                    // letting the tuple survive later projections. That
                    // happens exactly when λ pins the same point.
                    if mode == SelectMode::FourCase {
                        let lambda = Interval::from_op(atom.op, c.clone());
                        if lambda.implies(&Interval::point(k)) == Some(true) {
                            row.cells[atom.lhs].content = CellContent::Blank;
                            return (Some(row), R2Decision::Clear);
                        }
                    }
                    (Some(row), R2Decision::Retain)
                }
                CellContent::Var(x) => {
                    let lambda = Interval::from_op(atom.op, c.clone());
                    let mu = row.constraints.interval_of(x);
                    let case = match (mode, mu) {
                        (SelectMode::Basic, _) | (_, None) => SelectionCase::Modify,
                        (SelectMode::FourCase, Some(mu)) => Interval::four_case(&lambda, &mu),
                    };
                    match case {
                        SelectionCase::Clear => {
                            if clearable(&row, x, 1) {
                                row.clear_var(x);
                                (Some(row), R2Decision::Clear)
                            } else {
                                // retain: sound fallback
                                (Some(row), R2Decision::ClearFallback)
                            }
                        }
                        SelectionCase::Retain => (Some(row), R2Decision::Retain),
                        SelectionCase::Discard => (None, R2Decision::Discard),
                        SelectionCase::Modify => {
                            // Represent µ ∧ λ; bind when it pins a point.
                            let point = row
                                .constraints
                                .interval_of(x)
                                .and_then(|mu| mu.intersect(&lambda))
                                .and_then(|iv| iv.as_point().cloned());
                            match point {
                                Some(p) => {
                                    if row.bind_var(x, &p) {
                                        (Some(row), R2Decision::Modify)
                                    } else {
                                        (None, R2Decision::Discard)
                                    }
                                }
                                None => {
                                    row.constraints.push(ConstraintAtom {
                                        lhs: x,
                                        op: atom.op,
                                        rhs: Rhs::Const(c.clone()),
                                    });
                                    if row.constraints.obviously_unsat(x) {
                                        (None, R2Decision::Discard)
                                    } else {
                                        (Some(row), R2Decision::Modify)
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Term::Col(j) => {
            // λ = Aᵢ θ Aⱼ. Both attributes must be starred.
            let (i, j) = (atom.lhs, *j);
            if !row.cells[i].starred || !row.cells[j].starred {
                return (None, R2Decision::Discard);
            }
            let (ci, cj) = (row.cells[i].content.clone(), row.cells[j].content.clone());
            match (ci, cj) {
                (CellContent::Blank, CellContent::Blank) => {
                    // µ = true: the answer already satisfies λ — retain
                    // (the §4.2 "clear" case; Basic mode would have to
                    // introduce a fresh shared variable for Eq).
                    if mode == SelectMode::Basic && atom.op == CompOp::Eq {
                        let x = fresh(next_var);
                        row.cells[i].content = CellContent::Var(x);
                        row.cells[j].content = CellContent::Var(x);
                        (Some(row), R2Decision::Modify)
                    } else {
                        (Some(row), R2Decision::Clear)
                    }
                }
                (CellContent::Const(a), CellContent::Const(b)) => {
                    if atom.op.eval(&a, &b).unwrap_or(false) {
                        (Some(row), R2Decision::Retain)
                    } else {
                        (None, R2Decision::Discard)
                    }
                }
                (CellContent::Var(x), CellContent::Var(y)) if x == y => {
                    match atom.op {
                        // µ forces Aᵢ = Aⱼ.
                        CompOp::Eq | CompOp::Le | CompOp::Ge => {
                            // µ ⊨ λ; for Eq, if the variable is purely a
                            // pairwise link (these two cells, no atoms),
                            // µ ≡ λ → clear (FourCase only).
                            if mode == SelectMode::FourCase
                                && atom.op == CompOp::Eq
                                && clearable(&row, x, 2)
                                && row.var_occurrences(x) == 2
                                && !row.constraints.mentions(x)
                            {
                                row.clear_var(x);
                                (Some(row), R2Decision::Clear)
                            } else {
                                (Some(row), R2Decision::Retain)
                            }
                        }
                        // x θ x is unsatisfiable for <, >, ≠.
                        CompOp::Lt | CompOp::Gt | CompOp::Ne => (None, R2Decision::Discard),
                    }
                }
                (CellContent::Var(x), CellContent::Var(y)) => {
                    if atom.op == CompOp::Eq {
                        if row.unify_vars(x, y) {
                            (Some(row), R2Decision::Modify)
                        } else {
                            (None, R2Decision::Discard)
                        }
                    } else {
                        row.constraints.push(ConstraintAtom {
                            lhs: x,
                            op: atom.op,
                            rhs: Rhs::Var(y),
                        });
                        (Some(row), R2Decision::Modify)
                    }
                }
                (CellContent::Var(x), CellContent::Const(a))
                | (CellContent::Const(a), CellContent::Var(x)) => {
                    // Orient as x θ' a.
                    let op = if matches!(row.cells[i].content, CellContent::Var(_)) {
                        atom.op
                    } else {
                        atom.op.flip()
                    };
                    if op == CompOp::Eq {
                        if row.bind_var(x, &a) {
                            (Some(row), R2Decision::Modify)
                        } else {
                            (None, R2Decision::Discard)
                        }
                    } else {
                        row.constraints.push(ConstraintAtom {
                            lhs: x,
                            op,
                            rhs: Rhs::Const(a.clone()),
                        });
                        if row.constraints.obviously_unsat(x) {
                            (None, R2Decision::Discard)
                        } else {
                            (Some(row), R2Decision::Modify)
                        }
                    }
                }
                (CellContent::Var(x), CellContent::Blank)
                | (CellContent::Blank, CellContent::Var(x)) => {
                    if atom.op == CompOp::Eq {
                        // Link the blank field to the variable: µ ∧ λ.
                        let blank_idx = if matches!(row.cells[i].content, CellContent::Blank) {
                            i
                        } else {
                            j
                        };
                        row.cells[blank_idx].content = CellContent::Var(x);
                        (Some(row), R2Decision::Modify)
                    } else {
                        // Retain: sound (the answer satisfies λ).
                        (Some(row), R2Decision::Retain)
                    }
                }
                (CellContent::Const(a), CellContent::Blank)
                | (CellContent::Blank, CellContent::Const(a)) => {
                    if atom.op == CompOp::Eq {
                        let blank_idx = if matches!(row.cells[i].content, CellContent::Blank) {
                            i
                        } else {
                            j
                        };
                        row.cells[blank_idx].content = CellContent::Const(a.clone());
                        (Some(row), R2Decision::Modify)
                    } else {
                        (Some(row), R2Decision::Retain)
                    }
                }
            }
        }
    }
}

/// Meta-projection onto `keep` (in order). A removed attribute whose
/// field is non-blank (after simplification) discards the meta-tuple;
/// variables whose remaining occurrences drop to zero take their atoms
/// with them only via simplification, so constrained variables removed
/// by projection correctly kill the row.
pub fn meta_project(rows: Vec<MetaTuple>, keep: &[usize]) -> Vec<MetaTuple> {
    let mut out = Vec::with_capacity(rows.len());
    'rows: for mut row in rows {
        row.simplify();
        let kept: std::collections::BTreeSet<usize> = keep.iter().copied().collect();
        for (i, c) in row.cells.iter().enumerate() {
            if !kept.contains(&i) && !c.is_blank() {
                continue 'rows;
            }
        }
        let cells = keep.iter().map(|&i| row.cells[i].clone()).collect();
        out.push(MetaTuple {
            provenance: row.provenance,
            covers: row.covers,
            cells,
            constraints: row.constraints,
        });
    }
    let mut merged = dedup_merge(out);
    for t in &mut merged {
        t.simplify();
    }
    dedup_merge(merged)
}

/// Evaluate how a value `v` relates to a meta-cell's condition under a
/// variable binding being built up; helper shared with mask application.
pub(crate) fn cell_admits(cell: &MetaCell, v: &Value, binding: &mut HashMap<VarId, Value>) -> bool {
    match &cell.content {
        CellContent::Blank => true,
        CellContent::Const(c) => c == v,
        CellContent::Var(x) => match binding.get(x) {
            Some(b) => b == v,
            None => {
                binding.insert(*x, v.clone());
                true
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::ConstraintSet;

    fn t(view: &str, id: u32, cells: Vec<MetaCell>) -> MetaTuple {
        MetaTuple::new(view, id, cells, ConstraintSet::empty())
    }

    fn t_with(view: &str, id: u32, cells: Vec<MetaCell>, atoms: Vec<ConstraintAtom>) -> MetaTuple {
        MetaTuple::new(view, id, cells, ConstraintSet::new(atoms))
    }

    #[test]
    fn product_cardinalities() {
        let a = vec![t("A", 1, vec![MetaCell::star()])];
        let b = vec![
            t("B", 2, vec![MetaCell::star(), MetaCell::blank()]),
            t("C", 3, vec![MetaCell::blank(), MetaCell::star()]),
        ];
        let plain = meta_product(&[a.clone(), b.clone()], &[1, 2], false);
        assert_eq!(plain.len(), 2);
        assert!(plain.iter().all(|r| r.arity() == 3));
        // Padding adds {a,_}, {_,b1}, {_,b2} (all-blank dropped).
        let padded = meta_product(&[a, b], &[1, 2], true);
        assert_eq!(padded.len(), 5);
    }

    #[test]
    fn product_with_empty_factor() {
        let a = vec![t("A", 1, vec![MetaCell::star()])];
        let empty: Vec<MetaTuple> = vec![];
        assert!(meta_product(&[a.clone(), empty.clone()], &[1, 2], false).is_empty());
        // With padding, A's subviews survive via the blank side.
        let padded = meta_product(&[a, empty], &[1, 2], true);
        assert_eq!(padded.len(), 1);
        assert_eq!(padded[0].cells.len(), 3);
    }

    #[test]
    fn product_removes_replications() {
        let est = |id| t("EST", id, vec![MetaCell::star(), MetaCell::var(4, true)]);
        let rows = meta_product(&[vec![est(1), est(2)]], &[2], false);
        // est1 and est2 are identical → merged, covers unioned.
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].covers.len(), 2);
    }

    #[test]
    fn select_requires_star() {
        let rows = vec![t("V", 1, vec![MetaCell::blank()])];
        let atom = PredicateAtom::col_const(0, CompOp::Eq, "x");
        let mut nv = 100;
        assert!(meta_select(rows, &atom, SelectMode::FourCase, &mut nv).is_empty());
    }

    #[test]
    fn select_blank_fourcase_clears_basic_represents() {
        let rows = vec![t("V", 1, vec![MetaCell::star()])];
        let atom = PredicateAtom::col_const(0, CompOp::Eq, "x");
        let mut nv = 100;
        let fc = meta_select(rows.clone(), &atom, SelectMode::FourCase, &mut nv);
        assert!(fc[0].cells[0].is_blank());
        let basic = meta_select(rows, &atom, SelectMode::Basic, &mut nv);
        assert_eq!(
            basic[0].cells[0].content,
            CellContent::Const(Value::str("x"))
        );
    }

    #[test]
    fn select_blank_basic_nonequality_introduces_var() {
        let rows = vec![t("V", 1, vec![MetaCell::star()])];
        let atom = PredicateAtom::col_const(0, CompOp::Ge, 10);
        let mut nv = 100;
        let basic = meta_select(rows, &atom, SelectMode::Basic, &mut nv);
        let x = basic[0].cells[0].as_var().unwrap();
        assert!(x >= 100);
        assert!(basic[0].constraints.mentions(x));
    }

    #[test]
    fn select_const_cell_evaluates() {
        let rows = vec![t("V", 1, vec![MetaCell::constant("Acme", true)])];
        let keep = PredicateAtom::col_const(0, CompOp::Eq, "Acme");
        let drop = PredicateAtom::col_const(0, CompOp::Ne, "Acme");
        let mut nv = 0;
        assert_eq!(
            meta_select(rows.clone(), &keep, SelectMode::FourCase, &mut nv).len(),
            1
        );
        assert!(meta_select(rows, &drop, SelectMode::FourCase, &mut nv).is_empty());
    }

    /// The paper's Example 2 BUDGET step: x₃ ≥ 250k meets λ ≥ 300k →
    /// λ ⊨ µ → clear.
    #[test]
    fn select_var_clear_case() {
        let rows = vec![t_with(
            "ELP",
            1,
            vec![MetaCell::var(3, true)],
            vec![ConstraintAtom::var_const(3, CompOp::Ge, 250_000)],
        )];
        let atom = PredicateAtom::col_const(0, CompOp::Ge, 300_000);
        let mut nv = 100;
        let out = meta_select(rows, &atom, SelectMode::FourCase, &mut nv);
        assert_eq!(out.len(), 1);
        assert!(out[0].cells[0].is_blank());
        assert!(out[0].constraints.is_empty());
    }

    #[test]
    fn select_var_retain_discard_modify() {
        let mk = || {
            vec![t_with(
                "V",
                1,
                vec![MetaCell::var(1, true)],
                vec![
                    ConstraintAtom::var_const(1, CompOp::Ge, 300),
                    ConstraintAtom::var_const(1, CompOp::Le, 600),
                ],
            )]
        };
        let mut nv = 100;
        // µ ⊨ λ → retain unchanged.
        let out = meta_select(
            mk(),
            &PredicateAtom::col_const(0, CompOp::Ge, 200),
            SelectMode::FourCase,
            &mut nv,
        );
        assert_eq!(out[0].constraints.atoms().len(), 2);
        // Contradiction → discard.
        assert!(meta_select(
            mk(),
            &PredicateAtom::col_const(0, CompOp::Lt, 300),
            SelectMode::FourCase,
            &mut nv,
        )
        .is_empty());
        // Overlap → modify (µ ∧ λ).
        let out = meta_select(
            mk(),
            &PredicateAtom::col_const(0, CompOp::Le, 400),
            SelectMode::FourCase,
            &mut nv,
        );
        let x = out[0].cells[0].as_var().unwrap();
        let iv = out[0].constraints.interval_of(x).unwrap();
        assert!(iv.contains(&Value::int(350)));
        assert!(!iv.contains(&Value::int(450)));
    }

    #[test]
    fn select_modify_to_point_binds() {
        let rows = vec![t_with(
            "V",
            1,
            vec![MetaCell::var(1, true), MetaCell::var(1, false)],
            vec![ConstraintAtom::var_const(1, CompOp::Ge, 300)],
        )];
        // λ: A₀ ≤ 300 → µ∧λ pins x₁ = 300 → both cells become the
        // constant.
        let mut nv = 100;
        let out = meta_select(
            rows,
            &PredicateAtom::col_const(0, CompOp::Le, 300),
            SelectMode::FourCase,
            &mut nv,
        );
        assert_eq!(out[0].cells[0].content, CellContent::Const(Value::int(300)));
        assert_eq!(out[0].cells[1].content, CellContent::Const(Value::int(300)));
    }

    /// Equality on a shared link variable clears it (Example 2's
    /// NAME = E_NAME on x₁).
    #[test]
    fn select_equality_shared_var_clears() {
        let rows = vec![t(
            "ELP",
            1,
            vec![MetaCell::var(1, true), MetaCell::var(1, true)],
        )];
        let atom = PredicateAtom::col_col(0, CompOp::Eq, 1);
        let mut nv = 100;
        let out = meta_select(rows, &atom, SelectMode::FourCase, &mut nv);
        assert!(out[0].cells[0].is_blank());
        assert!(out[0].cells[1].is_blank());
        assert!(out[0].cells[0].starred);
    }

    #[test]
    fn select_equality_shared_var_with_constraint_retains() {
        let rows = vec![t_with(
            "V",
            1,
            vec![MetaCell::var(1, true), MetaCell::var(1, true)],
            vec![ConstraintAtom::var_const(1, CompOp::Ge, 0)],
        )];
        let atom = PredicateAtom::col_col(0, CompOp::Eq, 1);
        let mut nv = 100;
        let out = meta_select(rows, &atom, SelectMode::FourCase, &mut nv);
        assert_eq!(out[0].cells[0].as_var(), Some(1));
    }

    #[test]
    fn select_colcol_const_cases() {
        let mut nv = 100;
        // Equal constants pass.
        let rows = vec![t(
            "V",
            1,
            vec![MetaCell::constant("a", true), MetaCell::constant("a", true)],
        )];
        let eq = PredicateAtom::col_col(0, CompOp::Eq, 1);
        assert_eq!(
            meta_select(rows, &eq, SelectMode::FourCase, &mut nv).len(),
            1
        );
        // Unequal constants under Eq drop.
        let rows = vec![t(
            "V",
            1,
            vec![MetaCell::constant("a", true), MetaCell::constant("b", true)],
        )];
        assert!(meta_select(rows, &eq, SelectMode::FourCase, &mut nv).is_empty());
        // Const vs blank under Eq propagates the constant.
        let rows = vec![t(
            "V",
            1,
            vec![MetaCell::constant("a", true), MetaCell::star()],
        )];
        let out = meta_select(rows, &eq, SelectMode::FourCase, &mut nv);
        assert_eq!(out[0].cells[1].content, CellContent::Const(Value::str("a")));
    }

    #[test]
    fn select_colcol_var_cases() {
        let mut nv = 100;
        let eq = PredicateAtom::col_col(0, CompOp::Eq, 1);
        // Distinct vars unify.
        let rows = vec![t(
            "V",
            1,
            vec![MetaCell::var(1, true), MetaCell::var(2, true)],
        )];
        let out = meta_select(rows, &eq, SelectMode::FourCase, &mut nv);
        assert_eq!(out[0].cells[0].content, out[0].cells[1].content);
        // Var vs const binds.
        let rows = vec![t(
            "V",
            1,
            vec![MetaCell::var(1, true), MetaCell::constant(5, true)],
        )];
        let out = meta_select(rows, &eq, SelectMode::FourCase, &mut nv);
        assert_eq!(out[0].cells[0].content, CellContent::Const(Value::int(5)));
        // Var vs blank links.
        let rows = vec![t("V", 1, vec![MetaCell::var(1, true), MetaCell::star()])];
        let out = meta_select(rows, &eq, SelectMode::FourCase, &mut nv);
        assert_eq!(out[0].cells[1].as_var(), Some(1));
        // Same var under < is unsatisfiable.
        let rows = vec![t(
            "V",
            1,
            vec![MetaCell::var(1, true), MetaCell::var(1, true)],
        )];
        let lt = PredicateAtom::col_col(0, CompOp::Lt, 1);
        assert!(meta_select(rows, &lt, SelectMode::FourCase, &mut nv).is_empty());
        // Same var under ≤ retains.
        let rows = vec![t(
            "V",
            1,
            vec![MetaCell::var(1, true), MetaCell::var(1, true)],
        )];
        let le = PredicateAtom::col_col(0, CompOp::Le, 1);
        assert_eq!(
            meta_select(rows, &le, SelectMode::FourCase, &mut nv).len(),
            1
        );
    }

    #[test]
    fn project_requires_blank_removed_fields() {
        // (x₁*, *, ⊔) projected onto {1}: x₁ is constrainted to nothing
        // but occurs once → simplification blanks it → survives.
        let rows = vec![t(
            "V",
            1,
            vec![MetaCell::var(1, true), MetaCell::star(), MetaCell::blank()],
        )];
        let out = meta_project(rows, &[1]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].cells.len(), 1);
        // A constant field blocks removal.
        let rows = vec![t(
            "V",
            1,
            vec![MetaCell::constant("Acme", true), MetaCell::star()],
        )];
        assert!(meta_project(rows, &[1]).is_empty());
        // A shared variable blocks removal.
        let rows = vec![t(
            "V",
            1,
            vec![
                MetaCell::var(1, true),
                MetaCell::var(1, true),
                MetaCell::star(),
            ],
        )];
        assert!(meta_project(rows, &[0, 2]).is_empty());
        // ... unless both its fields are kept.
        let rows = vec![t(
            "V",
            1,
            vec![
                MetaCell::var(1, true),
                MetaCell::var(1, true),
                MetaCell::blank(),
            ],
        )];
        assert_eq!(meta_project(rows, &[0, 1]).len(), 1);
    }

    #[test]
    fn project_reorders_and_merges() {
        let rows = vec![
            t(
                "A",
                1,
                vec![MetaCell::star(), MetaCell::blank(), MetaCell::star()],
            ),
            t(
                "B",
                2,
                vec![MetaCell::star(), MetaCell::blank(), MetaCell::star()],
            ),
        ];
        let out = meta_project(rows, &[2, 0]);
        assert_eq!(out.len(), 1, "identical projections merge");
        assert_eq!(out[0].provenance.len(), 2);
    }

    #[test]
    fn project_constrained_singleton_var_blocks() {
        // A variable with an interval constraint is a real selection —
        // removing its field must drop the tuple.
        let rows = vec![t_with(
            "V",
            1,
            vec![MetaCell::var(1, true), MetaCell::star()],
            vec![ConstraintAtom::var_const(1, CompOp::Ge, 10)],
        )];
        assert!(meta_project(rows, &[1]).is_empty());
    }
}
