//! # motro-core
//!
//! The primary contribution of Motro's ICDE 1989 paper: access
//! authorization by **algebraic manipulation of view definitions**.
//!
//! ## The model in one paragraph
//!
//! Permissions are conjunctive views, granted per user. View definitions
//! are stored inside the database as **meta-tuples**: for each relation
//! `R` a meta-relation `R'` mirrors `R`'s scheme (plus a `VIEW` column);
//! a meta-tuple's fields are constants, shared variables, or blanks, and
//! a `*` suffix marks projected attributes. Non-equality comparisons live
//! in an auxiliary `COMPARISON` relation; grants live in `PERMISSION`.
//! When user `U` submits query `Q`, the canonical plan `S` (products →
//! selections → projections) is executed **twice**: over the actual
//! relations, yielding the answer `A`, and — via the extended operators
//! of Section 4 — over the meta-relations, yielding `A'`, whose
//! meta-tuples define subviews of `A` that are also views of `U`'s
//! permitted views. `A'` is the **mask**: it is applied to `A`, only the
//! covered cells are delivered, and inferred `permit` statements describe
//! the delivered portion (Figure 2's commutative diagram).
//!
//! ## Crate layout
//!
//! * [`metatuple`] — meta-cells and meta-tuples.
//! * [`constraint`] — constraint sets over view variables and the
//!   interval solver behind the §4.2 four-case selection refinement.
//! * [`store`] — [`AuthStore`]: the meta-relations, `COMPARISON`, and
//!   `PERMISSION`; view registration (`define_view`) and grants.
//! * [`meta_algebra`] — Definitions 1–3 (meta product / selection /
//!   projection) plus the refinements: product padding (R1), four-case
//!   selection (R2), and closure pruning per the theorem.
//! * [`selfjoin`] — refinement R3: lossless self-join combination of
//!   meta-tuples from different views.
//! * [`mask`] — applying `A'` to `A`; masked answers; inferred `permit`
//!   statements.
//! * [`authorize`] — [`AuthorizedEngine`]: the end-to-end pipeline, with
//!   per-refinement configuration for ablations, and an execution trace
//!   that reproduces the paper's intermediate tables.
//! * [`update`] — the §6 extension to insert/delete/modify permissions.
//! * [`fixtures`] — the paper's Figure 1 database, views, and grants.

#![warn(missing_docs)]

pub mod aggregate;
pub mod authorize;
pub mod constraint;
pub mod containment;
pub mod error;
pub mod explain;
pub mod fixtures;
pub mod mask;
pub mod meta_algebra;
pub mod metarel;
pub mod metatuple;
pub mod selfjoin;
pub mod storage;
pub mod store;
pub mod update;

pub use aggregate::{AggAccessMode, AggregateOutcome};
pub use authorize::{AccessOutcome, AuthTrace, AuthorizedEngine, RefinementConfig, SelectionStep};
pub use constraint::{ConstraintAtom, ConstraintSet, Interval, Rhs};
pub use containment::{contained_in, query_contained_in};
pub use error::{CoreError, CoreResult};
pub use explain::{AuthExplain, CellDenial, CellExplain, MaskTupleExplain, RowExplain};
pub use mask::{Mask, MaskedRelation, PermitCondition, PermitStatement};
pub use meta_algebra::{DecisionRecord, R2Decision};
pub use metarel::MetaRelation;
pub use metatuple::{CellContent, MetaCell, MetaTuple, TupleId, VarId};
pub use storage::{decode_store, encode_store};
pub use store::{AuthStore, BranchEntry, ViewEntry};
