//! The paper's literal storage model: "Access permissions are stored in
//! new relations that are added to the database" (Section 3).
//!
//! [`encode_store`] materializes an [`AuthStore`] as ordinary
//! [`Relation`]s — one `R'` per base relation (scheme mirrored, all
//! string-typed, plus the `VIEW` column) holding the meta-tuples in the
//! paper's notation (`x₁*`, `Acme*`, blank), the auxiliary
//! `COMPARISON = (VIEW, X, COMPARE, Y)` and `PERMISSION = (USER, VIEW)`
//! relations, and (extensions) `MEMBERSHIP = (GROUP, USER)` for group
//! principals. [`decode_store`] reboots a fully functional store from
//! those relations alone: the meta-tuples are parsed back, each view's
//! statement is *decompiled* from its normal form (the paper never
//! stores statement text), and grants are replayed — demonstrating that
//! the Section 3 representation is complete.
//!
//! Encoding notes:
//!
//! * string constants that would be ambiguous in the notation (they
//!   look like a variable `x12`, end in `*`, are empty, or carry
//!   quotes) are single-quoted;
//! * an `ATOM` ordinal column disambiguates a view's meta-tuples (the
//!   paper's Figure 1 lists EST's identical meta-tuple twice, which a
//!   set-semantics relation cannot hold);
//! * disjunctive-view branches beyond the first are tagged
//!   `NAME#k` in the `VIEW` column (the paper has no branches);
//! * stored self-join combinations are *not* encoded — the store
//!   regenerates them, exactly as it does after any definition change;
//! * aggregate views are outside the paper's storage model and are not
//!   encoded (use the JSON persistence for full extension state).

use crate::error::{CoreError, CoreResult};
use crate::metatuple::{CellContent, MetaCell};
use crate::store::AuthStore;
use motro_rel::{DbSchema, Domain, RelSchema, Relation, Tuple, Value};
use motro_views::{CompRhs, MembershipAtom, NormalizedView, VarComparison};
use std::collections::BTreeMap;

/// Name of the meta-relation table for base relation `rel`.
pub fn meta_table_name(rel: &str) -> String {
    format!("{rel}'")
}

fn str_columns(names: &[&str]) -> RelSchema {
    RelSchema::base(
        "<storage>",
        &names.iter().map(|n| (*n, Domain::Str)).collect::<Vec<_>>(),
    )
}

/// Storage rendering of a meta-cell: the paper's notation with quoting
/// for ambiguous constants.
fn encode_cell(cell: &MetaCell) -> String {
    let base = match &cell.content {
        CellContent::Blank => String::new(),
        CellContent::Var(x) => format!("x{x}"),
        CellContent::Const(Value::Int(i)) => i.to_string(),
        CellContent::Const(Value::Str(s)) => {
            if needs_quoting(s) {
                format!("'{s}'")
            } else {
                s.clone()
            }
        }
    };
    if cell.starred {
        format!("{base}*")
    } else {
        base
    }
}

fn needs_quoting(s: &str) -> bool {
    s.is_empty()
        || s.ends_with('*')
        || s.contains('\'')
        || looks_like_var(s)
        || s.parse::<i64>().is_ok()
}

fn looks_like_var(s: &str) -> bool {
    s.len() > 1 && s.starts_with('x') && s[1..].chars().all(|c| c.is_ascii_digit())
}

/// Parse a storage cell back (the column's domain disambiguates
/// integer constants).
fn decode_cell(text: &str, domain: Domain) -> CoreResult<MetaCell> {
    let (body, starred) = match text.strip_suffix('*') {
        Some(b) => (b, true),
        None => (text, false),
    };
    let content = if body.is_empty() {
        CellContent::Blank
    } else if let Some(q) = body.strip_prefix('\'').and_then(|b| b.strip_suffix('\'')) {
        CellContent::Const(Value::str(q))
    } else if looks_like_var(body) {
        CellContent::Var(
            body[1..]
                .parse()
                .map_err(|_| CoreError::Internal(format!("bad variable in storage: {body}")))?,
        )
    } else if domain == Domain::Int {
        CellContent::Const(Value::Int(body.parse().map_err(|_| {
            CoreError::Internal(format!("bad integer constant in storage: {body}"))
        })?))
    } else {
        CellContent::Const(Value::str(body))
    };
    Ok(MetaCell { content, starred })
}

/// Materialize the store as relations (see module docs).
pub fn encode_store(store: &AuthStore) -> CoreResult<BTreeMap<String, Relation>> {
    let mut out = BTreeMap::new();
    let scheme = store.scheme();

    // The meta-relations.
    for (rel, def) in scheme.iter() {
        let mut names: Vec<&str> = vec!["VIEW", "ATOM"];
        let attr_names: Vec<String> = def
            .schema
            .columns()
            .iter()
            .map(|c| c.qual.attr.clone())
            .collect();
        names.extend(attr_names.iter().map(String::as_str));
        let schema = str_columns(&names);
        let mut table = Relation::new(schema);
        let mr = store.meta_relation(rel)?;
        for t in &mr.tuples {
            let (tag, ordinal) = store.storage_position_of(t).ok_or_else(|| {
                CoreError::Internal("stored meta-tuple without a branch".to_owned())
            })?;
            let mut row = vec![Value::str(tag), Value::str(ordinal.to_string())];
            row.extend(t.cells.iter().map(|c| Value::str(encode_cell(c))));
            table.insert(Tuple::new(row)).map_err(CoreError::Rel)?;
        }
        out.insert(meta_table_name(rel), table);
    }

    // COMPARISON.
    let mut comparison = Relation::new(str_columns(&["VIEW", "X", "COMPARE", "Y"]));
    for (tag, atom) in store.all_comparisons() {
        let y = match &atom.rhs {
            crate::constraint::Rhs::Var(v) => format!("x{v}"),
            crate::constraint::Rhs::Const(Value::Int(i)) => i.to_string(),
            crate::constraint::Rhs::Const(Value::Str(s)) => {
                if needs_quoting(s) {
                    format!("'{s}'")
                } else {
                    s.clone()
                }
            }
        };
        comparison
            .insert(Tuple::new(vec![
                Value::str(tag.clone()),
                Value::str(format!("x{}", atom.lhs)),
                Value::str(atom.op.to_string()),
                Value::str(y),
            ]))
            .map_err(CoreError::Rel)?;
    }
    out.insert("COMPARISON".to_owned(), comparison);

    // PERMISSION (group grants with the `group:` prefix).
    let mut permission = Relation::new(str_columns(&["USER", "VIEW"]));
    for (principal, view) in store.all_grants() {
        permission
            .insert(Tuple::new(vec![Value::str(principal), Value::str(view)]))
            .map_err(CoreError::Rel)?;
    }
    out.insert("PERMISSION".to_owned(), permission);

    // MEMBERSHIP (extension).
    let mut membership = Relation::new(str_columns(&["GROUP", "USER"]));
    for (group, user) in store.all_memberships() {
        membership
            .insert(Tuple::new(vec![Value::str(group), Value::str(user)]))
            .map_err(CoreError::Rel)?;
    }
    out.insert("MEMBERSHIP".to_owned(), membership);
    Ok(out)
}

/// Reboot a store from its storage relations (see module docs).
pub fn decode_store(
    scheme: &DbSchema,
    tables: &BTreeMap<String, Relation>,
) -> CoreResult<AuthStore> {
    // Collect branches: tag → (per-relation atoms in storage order).
    #[derive(Default)]
    struct Branch {
        atoms: Vec<(usize, MembershipAtom)>,
        comparisons: Vec<VarComparison>,
    }
    let mut branches: BTreeMap<String, Branch> = BTreeMap::new();

    for (rel, def) in scheme.iter() {
        let Some(table) = tables.get(&meta_table_name(rel)) else {
            continue;
        };
        for row in table.rows() {
            let tag = row
                .value(0)
                .as_str()
                .ok_or_else(|| CoreError::Internal("VIEW column must be text".to_owned()))?
                .to_owned();
            let ordinal: usize = row
                .value(1)
                .as_str()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| CoreError::Internal("bad ATOM ordinal".to_owned()))?;
            let mut terms = Vec::with_capacity(def.schema.arity());
            let mut starred = Vec::with_capacity(def.schema.arity());
            for i in 0..def.schema.arity() {
                let text = row
                    .value(i + 2)
                    .as_str()
                    .ok_or_else(|| CoreError::Internal("meta cells must be text".to_owned()))?;
                let cell = decode_cell(text, def.schema.domain(i))?;
                starred.push(cell.starred);
                terms.push(match cell.content {
                    CellContent::Blank => motro_views::VarTerm::Anon,
                    CellContent::Const(v) => motro_views::VarTerm::Const(v),
                    CellContent::Var(x) => motro_views::VarTerm::Var(x),
                });
            }
            branches.entry(tag).or_default().atoms.push((
                ordinal,
                MembershipAtom {
                    rel: rel.clone(),
                    terms,
                    starred,
                },
            ));
        }
    }

    if let Some(table) = tables.get("COMPARISON") {
        for row in table.rows() {
            let get = |i: usize| -> CoreResult<&str> {
                row.value(i)
                    .as_str()
                    .ok_or_else(|| CoreError::Internal("COMPARISON must be text".to_owned()))
            };
            let tag = get(0)?.to_owned();
            let x = get(1)?;
            if !looks_like_var(x) {
                return Err(CoreError::Internal(format!("bad X in COMPARISON: {x}")));
            }
            let lhs = x[1..]
                .parse()
                .map_err(|_| CoreError::Internal(format!("bad X in COMPARISON: {x}")))?;
            let op = parse_op(get(2)?)?;
            let ytext = get(3)?;
            let rhs = if looks_like_var(ytext) {
                CompRhs::Var(
                    ytext[1..].parse().map_err(|_| {
                        CoreError::Internal(format!("bad Y in COMPARISON: {ytext}"))
                    })?,
                )
            } else if let Some(q) = ytext.strip_prefix('\'').and_then(|b| b.strip_suffix('\'')) {
                CompRhs::Const(Value::str(q))
            } else if let Ok(i) = ytext.parse::<i64>() {
                CompRhs::Const(Value::Int(i))
            } else {
                CompRhs::Const(Value::str(ytext))
            };
            branches
                .entry(tag)
                .or_default()
                .comparisons
                .push(VarComparison { lhs, op, rhs });
        }
    }

    // Group branch tags by view name and install in branch order.
    let mut by_view: BTreeMap<String, Vec<(usize, Branch)>> = BTreeMap::new();
    for (tag, branch) in branches {
        let (name, idx) = match tag.split_once('#') {
            Some((n, k)) => (
                n.to_owned(),
                k.parse::<usize>().map_err(|_| {
                    CoreError::Internal(format!("bad branch tag in storage: {tag}"))
                })?,
            ),
            None => (tag.clone(), 1),
        };
        by_view.entry(name).or_default().push((idx, branch));
    }

    let mut store = AuthStore::new(scheme.clone());
    for (name, mut parts) in by_view {
        parts.sort_by_key(|(idx, _)| *idx);
        let normalized: Vec<NormalizedView> = parts
            .into_iter()
            .map(|(_, mut b)| {
                b.atoms.sort_by_key(|(ordinal, _)| *ordinal);
                NormalizedView {
                    name: name.clone(),
                    atoms: b.atoms.into_iter().map(|(_, a)| a).collect(),
                    comparisons: b.comparisons,
                }
            })
            .collect();
        store.define_view_from_storage(&name, normalized)?;
    }

    if let Some(table) = tables.get("PERMISSION") {
        for row in table.rows() {
            let principal = row.value(0).as_str().unwrap_or_default();
            let view = row.value(1).as_str().unwrap_or_default();
            match principal.strip_prefix("group:") {
                Some(g) => store.permit_group(view, g)?,
                None => store.permit(view, principal)?,
            }
        }
    }
    if let Some(table) = tables.get("MEMBERSHIP") {
        for row in table.rows() {
            let group = row.value(0).as_str().unwrap_or_default();
            let user = row.value(1).as_str().unwrap_or_default();
            store.add_member(group, user);
        }
    }
    Ok(store)
}

fn parse_op(s: &str) -> CoreResult<motro_rel::CompOp> {
    use motro_rel::CompOp::*;
    Ok(match s {
        "=" => Eq,
        "!=" | "<>" => Ne,
        "<" => Lt,
        "<=" => Le,
        ">" => Gt,
        ">=" => Ge,
        other => {
            return Err(CoreError::Internal(format!(
                "bad comparator in storage: {other}"
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authorize::AuthorizedEngine;
    use crate::fixtures;
    use motro_rel::CompOp;
    use motro_views::{AttrRef, ConjunctiveQuery};

    #[test]
    fn cell_codec_round_trips() {
        let cases = vec![
            MetaCell::blank(),
            MetaCell::star(),
            MetaCell::var(12, true),
            MetaCell::var(3, false),
            MetaCell::constant("Acme", true),
            MetaCell::constant("bq-45", false),
            MetaCell::constant(250_000, true),
            // Ambiguous constants must quote.
            MetaCell::constant("x12", true),
            MetaCell::constant("done*", false),
            MetaCell::constant("", true),
            MetaCell::constant("42", false), // string "42" in a Str column
        ];
        for c in cases {
            let dom = match &c.content {
                CellContent::Const(Value::Int(_)) => Domain::Int,
                _ => Domain::Str,
            };
            let text = encode_cell(&c);
            let back = decode_cell(&text, dom).unwrap();
            assert_eq!(c, back, "via {text:?}");
        }
    }

    #[test]
    fn paper_store_encodes_in_paper_notation() {
        let store = fixtures::paper_store();
        let tables = encode_store(&store).unwrap();
        let emp = tables.get("EMPLOYEE'").unwrap();
        assert_eq!(emp.len(), 4);
        let rendered = emp.to_table();
        assert!(rendered.contains("x1*"), "{rendered}");
        assert!(rendered.contains("x4*"), "{rendered}");
        let proj = tables.get("PROJECT'").unwrap().to_table();
        assert!(proj.contains("Acme*"), "{proj}");
        let cmp = tables.get("COMPARISON").unwrap().to_table();
        assert!(cmp.contains("x3"), "{cmp}");
        assert!(cmp.contains(">="), "{cmp}");
        assert!(cmp.contains("250000"), "{cmp}");
        let perm = tables.get("PERMISSION").unwrap();
        assert_eq!(perm.len(), 5);
    }

    #[test]
    fn reboot_from_storage_is_behaviorally_identical() {
        let db = fixtures::paper_database();
        let store = fixtures::paper_store();
        let tables = encode_store(&store).unwrap();
        let rebooted = decode_store(db.schema(), &tables).unwrap();

        // Same storage after a second encode (fixpoint).
        let tables2 = encode_store(&rebooted).unwrap();
        for (name, t) in &tables {
            assert!(
                t.set_eq(tables2.get(name).unwrap()),
                "{name} differs after reboot:\n{}\nvs\n{}",
                t.to_table(),
                tables2.get(name).unwrap().to_table()
            );
        }

        // Identical masks on the paper's three examples.
        let e1 = AuthorizedEngine::new(&db, &store);
        let e2 = AuthorizedEngine::new(&db, &rebooted);
        let queries: Vec<(&str, ConjunctiveQuery)> = vec![
            (
                "Brown",
                ConjunctiveQuery::retrieve()
                    .target("PROJECT", "NUMBER")
                    .target("PROJECT", "SPONSOR")
                    .where_const(AttrRef::new("PROJECT", "BUDGET"), CompOp::Ge, 250_000)
                    .build(),
            ),
            (
                "Klein",
                ConjunctiveQuery::retrieve()
                    .target("EMPLOYEE", "NAME")
                    .target("EMPLOYEE", "SALARY")
                    .where_const(AttrRef::new("EMPLOYEE", "TITLE"), CompOp::Eq, "engineer")
                    .where_attr(
                        AttrRef::new("EMPLOYEE", "NAME"),
                        CompOp::Eq,
                        AttrRef::new("ASSIGNMENT", "E_NAME"),
                    )
                    .where_attr(
                        AttrRef::new("ASSIGNMENT", "P_NO"),
                        CompOp::Eq,
                        AttrRef::new("PROJECT", "NUMBER"),
                    )
                    .where_const(AttrRef::new("PROJECT", "BUDGET"), CompOp::Gt, 300_000)
                    .build(),
            ),
            (
                "Brown",
                ConjunctiveQuery::retrieve()
                    .target_occ("EMPLOYEE", 1, "NAME")
                    .target_occ("EMPLOYEE", 1, "SALARY")
                    .target_occ("EMPLOYEE", 2, "NAME")
                    .target_occ("EMPLOYEE", 2, "SALARY")
                    .where_attr(
                        AttrRef::occ("EMPLOYEE", 1, "TITLE"),
                        CompOp::Eq,
                        AttrRef::occ("EMPLOYEE", 2, "TITLE"),
                    )
                    .build(),
            ),
        ];
        for (user, q) in queries {
            let a = e1.retrieve(user, &q).unwrap();
            let b = e2.retrieve(user, &q).unwrap();
            assert_eq!(a.masked.rows, b.masked.rows, "{user}: {q}");
            assert_eq!(a.masked.withheld, b.masked.withheld);
            assert_eq!(a.full_access, b.full_access);
            assert_eq!(
                a.permits
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>(),
                b.permits
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn union_views_and_groups_survive_storage() {
        let mut scheme = DbSchema::new();
        scheme
            .add_relation_with_key("P", &[("K", Domain::Str), ("W", Domain::Str)], Some(&["K"]))
            .unwrap();
        let mut store = AuthStore::new(scheme.clone());
        store
            .define_view_union(
                "U",
                &[
                    ConjunctiveQuery::view("U")
                        .target("P", "K")
                        .target("P", "W")
                        .where_const(AttrRef::new("P", "W"), CompOp::Eq, "a")
                        .build(),
                    ConjunctiveQuery::view("U")
                        .target("P", "K")
                        .target("P", "W")
                        .where_const(AttrRef::new("P", "W"), CompOp::Eq, "b")
                        .build(),
                ],
            )
            .unwrap();
        store.permit_group("U", "G").unwrap();
        store.add_member("G", "u");

        let tables = encode_store(&store).unwrap();
        assert!(tables.get("P'").unwrap().to_table().contains("U#2"));
        let rebooted = decode_store(&scheme, &tables).unwrap();
        assert_eq!(rebooted.view("U").unwrap().branches.len(), 2);
        assert_eq!(rebooted.permitted_views("u"), vec!["U"]);
        // Storage fixpoint.
        let tables2 = encode_store(&rebooted).unwrap();
        for (name, t) in &tables {
            assert!(t.set_eq(tables2.get(name).unwrap()), "{name}");
        }
    }
}
