//! Conjunctive-query containment: a sound homomorphism test.
//!
//! Section 3 frames authorization as view containment: "Q should be
//! authorized if it is also a view of V₁,…,Vₘ". The engine *infers*
//! masks instead of deciding containment (the paper explicitly trades
//! completeness for tractability), but a direct containment test is
//! still valuable: it certifies full-access decisions, powers the
//! System R baseline's "can this query be re-aimed at that view?"
//! check, and gives the test-suite an independent oracle.
//!
//! [`contained_in`] decides `Q ⊆ V` **soundly** (never a false
//! positive) by the classic Chandra–Merlin containment homomorphism,
//! extended conservatively to the paper's comparison atoms:
//!
//! * every membership atom of `V` must map to an atom of `Q` over the
//!   same relation, consistently on variables and constants;
//! * `V`'s head must map positionally onto `Q`'s head;
//! * every comparison of `V` must be *implied* by `Q` under the
//!   mapping, where single-variable comparisons are decided exactly by
//!   the interval solver and anything else must appear in `Q`
//!   syntactically.
//!
//! Incompleteness is inherited from the comparison extension (pure
//! equality-join queries are decided exactly); callers must treat
//! `false` as "not provably contained".

use crate::constraint::Interval;
use motro_rel::{CompOp, DbSchema, Value};
use motro_views::{normalize, CompRhs, NormalizedView, VarId, VarTerm};

/// What a view variable maps to in the query.
#[derive(Debug, Clone, PartialEq)]
enum Image {
    Var(VarId),
    Const(Value),
    /// A specific anonymous position of a specific query atom: distinct
    /// existential, identified by (query-atom index, position).
    Anon(usize, usize),
}

/// Is every answer of `query` an answer of `view`, on every database
/// instance? Sound, not complete (see module docs).
///
/// Both statements must have the same number of targets; `query ⊆ view`
/// additionally requires the i-th target of `view` to map onto the
/// i-th target of `query`.
pub fn contained_in(query: &NormalizedView, view: &NormalizedView) -> bool {
    motro_obs::counter!("containment.checks").inc();
    if head_arity(query) != head_arity(view) {
        return false;
    }
    // Backtracking assignment of view atoms to query atoms.
    let mut assignment: Vec<Option<usize>> = vec![None; view.atoms.len()];
    let held = search(query, view, 0, &mut assignment);
    if held {
        motro_obs::counter!("containment.held").inc();
    }
    held
}

fn head_arity(v: &NormalizedView) -> usize {
    v.atoms
        .iter()
        .map(|a| a.starred.iter().filter(|s| **s).count())
        .sum()
}

/// The head positions of a normalized view in display order:
/// `(atom index, position)` for every starred position.
fn head_positions(v: &NormalizedView) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (ai, a) in v.atoms.iter().enumerate() {
        for (p, s) in a.starred.iter().enumerate() {
            if *s {
                out.push((ai, p));
            }
        }
    }
    out
}

fn search(
    query: &NormalizedView,
    view: &NormalizedView,
    next: usize,
    assignment: &mut Vec<Option<usize>>,
) -> bool {
    if next == view.atoms.len() {
        return check_assignment(query, view, assignment);
    }
    for (qi, qa) in query.atoms.iter().enumerate() {
        if qa.rel == view.atoms[next].rel {
            assignment[next] = Some(qi);
            if search(query, view, next + 1, assignment) {
                return true;
            }
            assignment[next] = None;
        }
    }
    false
}

fn check_assignment(
    query: &NormalizedView,
    view: &NormalizedView,
    assignment: &[Option<usize>],
) -> bool {
    // Build the variable mapping induced by the atom assignment.
    let mut map: std::collections::BTreeMap<VarId, Image> = std::collections::BTreeMap::new();
    for (vi, qi) in assignment.iter().enumerate() {
        let qi = qi.expect("complete assignment");
        let va = &view.atoms[vi];
        let qa = &query.atoms[qi];
        for (p, vt) in va.terms.iter().enumerate() {
            let q_image = match &qa.terms[p] {
                VarTerm::Var(x) => Image::Var(*x),
                VarTerm::Const(c) => Image::Const(c.clone()),
                VarTerm::Anon => Image::Anon(qi, p),
            };
            match vt {
                VarTerm::Anon => {} // view's anon matches anything
                VarTerm::Const(c) => {
                    // A view constant must meet the same constant.
                    if q_image != Image::Const(c.clone()) {
                        return false;
                    }
                }
                VarTerm::Var(x) => match map.get(x) {
                    None => {
                        map.insert(*x, q_image);
                    }
                    Some(prev) => {
                        if *prev != q_image {
                            return false;
                        }
                    }
                },
            }
        }
    }

    // Heads must correspond positionally.
    let qh = head_positions(query);
    let vh = head_positions(view);
    if qh.len() != vh.len() {
        return false;
    }
    let image_of = |t: &VarTerm, atom: usize, pos: usize| -> Image {
        match t {
            VarTerm::Var(x) => Image::Var(*x),
            VarTerm::Const(c) => Image::Const(c.clone()),
            VarTerm::Anon => Image::Anon(atom, pos),
        }
    };
    for ((vai, vp), (qai, qp)) in vh.iter().zip(&qh) {
        let qi = assignment[*vai].expect("complete");
        // The value the view produces at this head position is the
        // value of the assigned query atom at the same position (for a
        // view variable, whatever the mapping pinned it to; for a view
        // constant, that constant). It must equal the value of the
        // query's own head position.
        let mapped: Image = match &view.atoms[*vai].terms[*vp] {
            VarTerm::Var(x) => map.get(x).cloned().expect("head vars are mapped"),
            VarTerm::Const(c) => Image::Const(c.clone()),
            // The view places no restriction here: the produced value
            // is simply the assigned atom's value at this position.
            VarTerm::Anon => image_of(&query.atoms[qi].terms[*vp], qi, *vp),
        };
        let wanted = image_of(&query.atoms[*qai].terms[*qp], *qai, *qp);
        if mapped != wanted {
            return false;
        }
    }

    // Every view comparison must be implied by the query under the map.
    for c in &view.comparisons {
        if !comparison_implied(query, &map, c.lhs, c.op, &c.rhs) {
            return false;
        }
    }
    true
}

/// The interval of values query variable `x` may take, from the query's
/// comparisons (None when var–var atoms make it undecidable).
fn query_interval(query: &NormalizedView, x: VarId) -> Option<Interval> {
    let mut iv = Interval::full();
    for c in &query.comparisons {
        match (&c.rhs, c.lhs == x) {
            (CompRhs::Var(y), _) if c.lhs == x || *y == x => return None,
            (CompRhs::Const(v), true) => {
                iv = iv.intersect(&Interval::from_op(c.op, v.clone()))?;
            }
            _ => {}
        }
    }
    Some(iv)
}

fn comparison_implied(
    query: &NormalizedView,
    map: &std::collections::BTreeMap<VarId, Image>,
    lhs: VarId,
    op: CompOp,
    rhs: &CompRhs,
) -> bool {
    let l = map.get(&lhs);
    match (l, rhs) {
        (Some(Image::Const(a)), CompRhs::Const(b)) => op.eval(a, b).unwrap_or(false),
        (Some(Image::Var(x)), CompRhs::Const(b)) => {
            // The query's interval for x must imply `x op b`.
            match query_interval(query, *x) {
                Some(iv) => iv.implies(&Interval::from_op(op, b.clone())) == Some(true),
                None => syntactic_atom(query, *x, op, rhs.clone()),
            }
        }
        (Some(Image::Var(x)), CompRhs::Var(y)) => {
            // Both sides must be mapped variables with the comparison
            // present syntactically (conservative), or the same
            // variable under a reflexive comparator.
            match map.get(y) {
                Some(Image::Var(qy)) => {
                    if x == qy {
                        matches!(op, CompOp::Eq | CompOp::Le | CompOp::Ge)
                    } else {
                        syntactic_atom(query, *x, op, CompRhs::Var(*qy))
                    }
                }
                Some(Image::Const(b)) => match query_interval(query, *x) {
                    Some(iv) => iv.implies(&Interval::from_op(op, b.clone())) == Some(true),
                    None => false,
                },
                _ => false,
            }
        }
        (Some(Image::Const(a)), CompRhs::Var(y)) => match map.get(y) {
            Some(Image::Const(b)) => op.eval(a, b).unwrap_or(false),
            Some(Image::Var(qy)) => match query_interval(query, *qy) {
                Some(iv) => iv.implies(&Interval::from_op(op.flip(), a.clone())) == Some(true),
                None => false,
            },
            _ => false,
        },
        // Anonymous images are unconstrained: nothing non-trivial is
        // implied about them.
        _ => false,
    }
}

/// Is `x op rhs` (modulo orientation) literally among the query's
/// comparisons?
fn syntactic_atom(query: &NormalizedView, x: VarId, op: CompOp, rhs: CompRhs) -> bool {
    query.comparisons.iter().any(|c| {
        (c.lhs == x && c.op == op && c.rhs == rhs)
            || match (&c.rhs, &rhs) {
                (CompRhs::Var(y), CompRhs::Var(r)) => c.lhs == *r && *y == x && c.op == op.flip(),
                _ => false,
            }
    })
}

/// Convenience: containment between surface statements over `scheme`.
/// Statements that fail to normalize (unsatisfiable) are contained in
/// everything / contain nothing non-empty, handled conservatively as
/// `false`.
pub fn query_contained_in(
    query: &motro_views::ConjunctiveQuery,
    view: &motro_views::ConjunctiveQuery,
    scheme: &DbSchema,
) -> bool {
    let (Ok(q), Ok(v)) = (normalize(query, scheme), normalize(view, scheme)) else {
        motro_obs::counter!("containment.conservative").inc();
        return false;
    };
    contained_in(&q, &v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use motro_views::{AttrRef, ConjunctiveQuery};

    fn scheme() -> DbSchema {
        fixtures::paper_scheme()
    }

    fn c(q: &ConjunctiveQuery, v: &ConjunctiveQuery) -> bool {
        query_contained_in(q, v, &scheme())
    }

    #[test]
    fn reflexive() {
        for v in [
            fixtures::view_sae(),
            fixtures::view_psa(),
            fixtures::view_elp(),
            fixtures::view_est(),
        ] {
            assert!(c(&v, &v), "{v}");
        }
    }

    /// The Section 3 narrative: "projects with budgets exceeding
    /// $500,000" is a view of ELP-shaped queries with ≥ 250,000.
    #[test]
    fn stricter_selection_is_contained() {
        let loose = ConjunctiveQuery::retrieve()
            .target("PROJECT", "NUMBER")
            .target("PROJECT", "BUDGET")
            .where_const(AttrRef::new("PROJECT", "BUDGET"), CompOp::Ge, 250_000)
            .build();
        let strict = ConjunctiveQuery::retrieve()
            .target("PROJECT", "NUMBER")
            .target("PROJECT", "BUDGET")
            .where_const(AttrRef::new("PROJECT", "BUDGET"), CompOp::Gt, 500_000)
            .build();
        assert!(c(&strict, &loose));
        assert!(!c(&loose, &strict));
    }

    #[test]
    fn interval_implication_over_integers() {
        let v = ConjunctiveQuery::retrieve()
            .target("PROJECT", "BUDGET")
            .where_const(AttrRef::new("PROJECT", "BUDGET"), CompOp::Ne, 0)
            .build();
        let q = ConjunctiveQuery::retrieve()
            .target("PROJECT", "BUDGET")
            .where_const(AttrRef::new("PROJECT", "BUDGET"), CompOp::Ge, 1)
            .build();
        // BUDGET ≥ 1 implies BUDGET ≠ 0.
        assert!(c(&q, &v));
        assert!(!c(&v, &q));
    }

    #[test]
    fn different_targets_not_contained() {
        let names = ConjunctiveQuery::retrieve()
            .target("EMPLOYEE", "NAME")
            .build();
        let salaries = ConjunctiveQuery::retrieve()
            .target("EMPLOYEE", "SALARY")
            .build();
        assert!(!c(&names, &salaries));
        let both = ConjunctiveQuery::retrieve()
            .target("EMPLOYEE", "NAME")
            .target("EMPLOYEE", "SALARY")
            .build();
        // Fewer columns ⊄ more columns and vice versa (head arity).
        assert!(!c(&names, &both));
        assert!(!c(&both, &names));
    }

    #[test]
    fn join_query_contained_in_join_view() {
        // Klein's Section 3 example: employees on projects > 500k is a
        // view of ELP (projected to the same head shape).
        let elp_names = ConjunctiveQuery::retrieve()
            .target("EMPLOYEE", "NAME")
            .where_attr(
                AttrRef::new("EMPLOYEE", "NAME"),
                CompOp::Eq,
                AttrRef::new("ASSIGNMENT", "E_NAME"),
            )
            .where_attr(
                AttrRef::new("ASSIGNMENT", "P_NO"),
                CompOp::Eq,
                AttrRef::new("PROJECT", "NUMBER"),
            )
            .where_const(AttrRef::new("PROJECT", "BUDGET"), CompOp::Ge, 250_000)
            .build();
        let strict = ConjunctiveQuery::retrieve()
            .target("EMPLOYEE", "NAME")
            .where_attr(
                AttrRef::new("EMPLOYEE", "NAME"),
                CompOp::Eq,
                AttrRef::new("ASSIGNMENT", "E_NAME"),
            )
            .where_attr(
                AttrRef::new("ASSIGNMENT", "P_NO"),
                CompOp::Eq,
                AttrRef::new("PROJECT", "NUMBER"),
            )
            .where_const(AttrRef::new("PROJECT", "BUDGET"), CompOp::Gt, 500_000)
            .build();
        assert!(c(&strict, &elp_names));
        assert!(!c(&elp_names, &strict));
    }

    #[test]
    fn constant_selection_containment() {
        let acme = ConjunctiveQuery::retrieve()
            .target("PROJECT", "NUMBER")
            .target("PROJECT", "SPONSOR")
            .where_const(AttrRef::new("PROJECT", "SPONSOR"), CompOp::Eq, "Acme")
            .build();
        let all = ConjunctiveQuery::retrieve()
            .target("PROJECT", "NUMBER")
            .target("PROJECT", "SPONSOR")
            .build();
        assert!(c(&acme, &all));
        assert!(!c(&all, &acme));
        let apex = ConjunctiveQuery::retrieve()
            .target("PROJECT", "NUMBER")
            .target("PROJECT", "SPONSOR")
            .where_const(AttrRef::new("PROJECT", "SPONSOR"), CompOp::Eq, "Apex")
            .build();
        assert!(!c(&acme, &apex));
    }

    /// A self-join query folds onto a single-occurrence view (the
    /// classic homomorphism case).
    #[test]
    fn self_join_folds_onto_single_atom() {
        // Q: pairs with equal titles projected to one name; V: all
        // names. Q's two EMPLOYEE atoms both map onto V's one.
        let v = ConjunctiveQuery::retrieve()
            .target("EMPLOYEE", "NAME")
            .build();
        let q = ConjunctiveQuery::retrieve()
            .target_occ("EMPLOYEE", 1, "NAME")
            .where_attr(
                AttrRef::occ("EMPLOYEE", 1, "TITLE"),
                CompOp::Eq,
                AttrRef::occ("EMPLOYEE", 2, "TITLE"),
            )
            .build();
        assert!(c(&q, &v), "folding homomorphism");
        assert!(
            !c(&v, &q) || c(&v, &q),
            "other direction is also true semantically"
        );
    }

    #[test]
    fn var_var_comparisons_conservative() {
        let v = ConjunctiveQuery::retrieve()
            .target_occ("EMPLOYEE", 1, "NAME")
            .target_occ("EMPLOYEE", 2, "NAME")
            .where_attr(
                AttrRef::occ("EMPLOYEE", 1, "SALARY"),
                CompOp::Gt,
                AttrRef::occ("EMPLOYEE", 2, "SALARY"),
            )
            .build();
        // Identical query: contained (syntactic atom found).
        assert!(c(&v, &v));
        // Without the comparison: not contained in v.
        let unconstrained = ConjunctiveQuery::retrieve()
            .target_occ("EMPLOYEE", 1, "NAME")
            .target_occ("EMPLOYEE", 2, "NAME")
            .build();
        assert!(!c(&unconstrained, &v));
        assert!(c(&v, &unconstrained));
    }
}
