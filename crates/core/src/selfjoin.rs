//! Refinement R3: self-join inference (paper, Section 4.2).
//!
//! "Let r and s be meta-tuples in relation R' that do not belong to the
//! same view. Assume that the subviews defined by r and s can participate
//! in a lossless join (for example, both subviews include the key of this
//! relation). We define their self-join with a meta-tuple q …
//! self-joins are subviews of R which should be authorized."
//!
//! Because both subviews project a key of `R`, their join on the shared
//! attributes pairs each tuple of `R` with *itself*, so the join equals
//! `π_{α∪β} σ_{λ_r ∧ λ_s}(R)`: the combined meta-tuple takes the **union
//! of the projections** and the **conjunction of the selections**.
//!
//! *Fidelity note* (recorded in DESIGN.md): the paper's prose says the
//! combined field is "the disjunction of the subviews defined in aᵢ and
//! bᵢ" starred "if both aᵢ or bᵢ are suffixed by *", but its own
//! Example 3 combines `(*, ⊔, *)` with `(*, x₄*, ⊔)` into `(*, x₄*, *)`
//! — conjunction of conditions, union of stars — and only the
//! conjunction is sound (a disjunctive condition would reveal β-columns
//! of tuples covered by r alone). We implement what the example (and
//! soundness) requires.
//!
//! Following the paper, self-joins are generated once and stored with
//! the original definitions until those change; [`crate::AuthStore`]
//! regenerates them on every view definition change.

use crate::metatuple::{CellContent, MetaTuple};

/// Combine two meta-tuples of different views over the same relation.
///
/// Requirements checked here:
/// * disjoint provenance ("do not belong to the same view");
/// * `key` non-empty and starred in **both** tuples (the lossless-join
///   precondition);
/// * the conjunction of the two selections is satisfiable (constant
///   conflicts and violated interval constraints reject the pair).
///
/// Returns `None` when any requirement fails.
pub fn combine(r: &MetaTuple, s: &MetaTuple, key: &[usize]) -> Option<MetaTuple> {
    if key.is_empty() || r.cells.len() != s.cells.len() {
        return None;
    }
    if !r.provenance.is_disjoint(&s.provenance) {
        return None;
    }
    if !key
        .iter()
        .all(|&k| r.cells[k].starred && s.cells[k].starred)
    {
        return None;
    }

    // Start from r, merge constraints, then fold s's cells in.
    let mut q = r.clone();
    q.provenance.extend(s.provenance.iter().cloned());
    q.covers.extend(s.covers.iter().copied());
    q.constraints = r.constraints.merge(&s.constraints);

    // Deferred rewrites: binding a variable to a constant or unifying
    // two variables must see the fully merged cell row, so collect them
    // first.
    enum Rewrite {
        Bind(crate::metatuple::VarId, motro_rel::Value),
        Unify(crate::metatuple::VarId, crate::metatuple::VarId),
    }
    let mut rewrites = Vec::new();

    for (i, (a, b)) in r.cells.iter().zip(&s.cells).enumerate() {
        let starred = a.starred || b.starred;
        let content = match (&a.content, &b.content) {
            (CellContent::Blank, c) | (c, CellContent::Blank) => c.clone(),
            (CellContent::Const(x), CellContent::Const(y)) => {
                if x == y {
                    CellContent::Const(x.clone())
                } else {
                    return None; // contradictory selections
                }
            }
            (CellContent::Const(v), CellContent::Var(y)) => {
                rewrites.push(Rewrite::Bind(*y, v.clone()));
                CellContent::Const(v.clone())
            }
            (CellContent::Var(x), CellContent::Const(v)) => {
                rewrites.push(Rewrite::Bind(*x, v.clone()));
                CellContent::Const(v.clone())
            }
            (CellContent::Var(x), CellContent::Var(y)) => {
                if x != y {
                    rewrites.push(Rewrite::Unify(*x, *y));
                }
                CellContent::Var(*x)
            }
        };
        q.cells[i] = crate::metatuple::MetaCell { content, starred };
    }

    for rw in rewrites {
        let ok = match rw {
            Rewrite::Bind(x, v) => q.bind_var(x, &v),
            Rewrite::Unify(x, y) => q.unify_vars(x, y),
        };
        if !ok {
            return None;
        }
    }

    // Reject pairs whose merged single-variable constraints are already
    // contradictory.
    for x in q.all_vars() {
        if q.constraints.obviously_unsat(x) {
            return None;
        }
    }
    Some(q)
}

/// Generate self-join combinations of `stored` meta-tuples.
///
/// The paper combines *pairs* (`rounds = 1`, the default used by
/// [`crate::AuthStore`]); higher `rounds` also combine previous
/// combinations with stored tuples (triples, quadruples, …), bounded by
/// provenance disjointness. Combinations identical in cells and
/// constraints are merged (covers unioned), which both keeps the
/// candidate sets small and lets a merged combination self-witness its
/// variable linkage under closure pruning.
///
/// `key` is the relation's declared key; `None` disables the refinement
/// for this relation (no lossless-join evidence).
pub fn self_joins(stored: &[MetaTuple], key: Option<&[usize]>, rounds: usize) -> Vec<MetaTuple> {
    let Some(key) = key else {
        return Vec::new();
    };
    let mut out: Vec<MetaTuple> = Vec::new();
    let mut frontier: Vec<MetaTuple> = stored.to_vec();
    let mut seen: std::collections::BTreeSet<String> =
        stored.iter().map(|t| format!("{t:?}")).collect();

    for _ in 0..rounds {
        if frontier.is_empty() {
            break;
        }
        let mut next = Vec::new();
        for f in &frontier {
            for t in stored {
                if let Some(q) = combine(f, t, key) {
                    let sig = format!("{q:?}");
                    if seen.insert(sig) {
                        next.push(q.clone());
                        out.push(q);
                    }
                }
            }
        }
        frontier = next;
    }
    crate::meta_algebra::dedup_merge(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{ConstraintAtom, ConstraintSet};
    use crate::metatuple::MetaCell;
    use motro_rel::{CompOp, Value};

    fn sae() -> MetaTuple {
        // (*, ⊔, *): names and salaries of all employees.
        MetaTuple::new(
            "SAE",
            1,
            vec![MetaCell::star(), MetaCell::blank(), MetaCell::star()],
            ConstraintSet::empty(),
        )
    }

    fn est(id: u32) -> MetaTuple {
        // (*, x4*, ⊔).
        MetaTuple::new(
            "EST",
            id,
            vec![MetaCell::star(), MetaCell::var(4, true), MetaCell::blank()],
            ConstraintSet::empty(),
        )
    }

    const KEY: &[usize] = &[0];

    /// The paper's Example 3 combination: SAE + EST → (*, x₄*, *).
    #[test]
    fn paper_example_combination() {
        let q = combine(&sae(), &est(2), KEY).unwrap();
        assert_eq!(q.cells[0], MetaCell::star());
        assert_eq!(q.cells[1], MetaCell::var(4, true));
        assert_eq!(q.cells[2], MetaCell::star());
        assert_eq!(q.render_provenance(), "EST, SAE");
        assert_eq!(q.covers.len(), 2);
    }

    #[test]
    fn same_view_pairs_rejected() {
        assert!(combine(&est(2), &est(3), KEY).is_none());
    }

    #[test]
    fn unstarred_key_rejected() {
        let mut r = sae();
        r.cells[0].starred = false;
        assert!(combine(&r, &est(2), KEY).is_none());
        assert!(combine(&est(2), &r, KEY).is_none());
    }

    #[test]
    fn empty_key_rejected() {
        assert!(combine(&sae(), &est(2), &[]).is_none());
    }

    #[test]
    fn constant_conflict_rejected() {
        let a = MetaTuple::new(
            "A",
            1,
            vec![MetaCell::star(), MetaCell::constant("manager", true)],
            ConstraintSet::empty(),
        );
        let b = MetaTuple::new(
            "B",
            2,
            vec![MetaCell::star(), MetaCell::constant("engineer", true)],
            ConstraintSet::empty(),
        );
        assert!(combine(&a, &b, KEY).is_none());
        // Equal constants combine fine.
        let c = MetaTuple::new(
            "C",
            3,
            vec![MetaCell::star(), MetaCell::constant("manager", false)],
            ConstraintSet::empty(),
        );
        let q = combine(&a, &c, KEY).unwrap();
        assert_eq!(q.cells[1], MetaCell::constant("manager", true));
    }

    #[test]
    fn const_vs_var_binds_and_checks_constraints() {
        let a = MetaTuple::new(
            "A",
            1,
            vec![MetaCell::star(), MetaCell::constant(100, true)],
            ConstraintSet::empty(),
        );
        let b = MetaTuple::new(
            "B",
            2,
            vec![MetaCell::star(), MetaCell::var(1, true)],
            ConstraintSet::new(vec![ConstraintAtom::var_const(1, CompOp::Ge, 50)]),
        );
        let q = combine(&a, &b, KEY).unwrap();
        assert_eq!(q.cells[1].content, CellContent::Const(Value::int(100)));
        assert!(q.constraints.is_empty());

        // Violating constraint rejects the pair.
        let c = MetaTuple::new(
            "C",
            3,
            vec![MetaCell::star(), MetaCell::var(2, true)],
            ConstraintSet::new(vec![ConstraintAtom::var_const(2, CompOp::Gt, 200)]),
        );
        assert!(combine(&a, &c, KEY).is_none());
    }

    #[test]
    fn var_vs_var_unifies_and_merges_intervals() {
        let a = MetaTuple::new(
            "A",
            1,
            vec![MetaCell::star(), MetaCell::var(1, true)],
            ConstraintSet::new(vec![ConstraintAtom::var_const(1, CompOp::Ge, 100)]),
        );
        let b = MetaTuple::new(
            "B",
            2,
            vec![MetaCell::star(), MetaCell::var(2, true)],
            ConstraintSet::new(vec![ConstraintAtom::var_const(2, CompOp::Le, 200)]),
        );
        let q = combine(&a, &b, KEY).unwrap();
        let x = q.cells[1].as_var().unwrap();
        let iv = q.constraints.interval_of(x).unwrap();
        assert!(iv.contains(&Value::int(150)));
        assert!(!iv.contains(&Value::int(50)));
        assert!(!iv.contains(&Value::int(250)));

        // Disjoint intervals reject.
        let c = MetaTuple::new(
            "C",
            3,
            vec![MetaCell::star(), MetaCell::var(3, true)],
            ConstraintSet::new(vec![ConstraintAtom::var_const(3, CompOp::Lt, 50)]),
        );
        assert!(combine(&a, &c, KEY).is_none());
    }

    #[test]
    fn self_joins_fixpoint_three_views() {
        let a = MetaTuple::new(
            "A",
            1,
            vec![MetaCell::star(), MetaCell::star(), MetaCell::blank()],
            ConstraintSet::empty(),
        );
        let b = MetaTuple::new(
            "B",
            2,
            vec![MetaCell::star(), MetaCell::blank(), MetaCell::star()],
            ConstraintSet::empty(),
        );
        let c = MetaTuple::new(
            "C",
            3,
            vec![MetaCell::star(), MetaCell::blank(), MetaCell::blank()],
            ConstraintSet::empty(),
        );
        let joins = self_joins(&[a, b, c], Some(KEY), 3);
        // Pairs AB, AC, BC plus the triple ABC are generated; rows with
        // identical cells and constraints then merge (AB and ABC both
        // star everything), leaving three distinct combinations, one of
        // them carrying all three views' provenance.
        assert_eq!(joins.len(), 3, "joins: {joins:?}");
        assert!(joins
            .iter()
            .any(|t| t.provenance.len() == 3 && t.cells.iter().all(|c| c.starred)));
    }

    #[test]
    fn self_joins_disabled_without_key() {
        assert!(self_joins(&[sae(), est(2)], None, 1).is_empty());
    }
}
