//! Masks: applying the meta-answer `A'` to the answer `A`.
//!
//! The meta-tuples surviving the meta-plan are "taken as a mask that is
//! applied to the answer, yielding the data that may be delivered to the
//! user. This answer is accompanied by statements describing the
//! portions delivered" (paper, Section 1).
//!
//! A mask meta-tuple *covers* an answer tuple when its constants match,
//! its variables bind consistently (the same variable in two columns
//! forces equal values), and its comparison constraints hold under that
//! binding. Covered tuples reveal the meta-tuple's **starred** columns;
//! visibility is the union over all mask tuples; tuples with no visible
//! cell are withheld entirely.

use crate::meta_algebra::cell_admits;
use crate::metarel::render_table;
use crate::metatuple::{CellContent, MetaTuple, VarId};
use motro_rel::{RelSchema, Relation, Tuple, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// The permission mask for one query's answer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mask {
    /// The answer's schema.
    pub schema: RelSchema,
    /// The surviving meta-tuples (`A'`).
    pub tuples: Vec<MetaTuple>,
}

impl Mask {
    /// Build a mask, minimizing it (subsumed meta-tuples dropped).
    pub fn new(schema: RelSchema, tuples: Vec<MetaTuple>) -> Self {
        let mut m = Mask { schema, tuples };
        m.minimize();
        m
    }

    /// Number of mask tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// No mask tuples — nothing may be delivered.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Does some mask tuple grant the entire answer (all columns
    /// starred, no conditions)?
    pub fn is_full(&self) -> bool {
        self.tuples
            .iter()
            .any(|t| t.cells.iter().all(|c| c.starred && c.is_blank()) && t.constraints.is_empty())
    }

    /// Drop mask tuples subsumed by another (weaker-or-equal condition,
    /// superset of stars). Purely cosmetic: the union of coverage is
    /// unchanged.
    fn minimize(&mut self) {
        let tuples = std::mem::take(&mut self.tuples);
        let mut kept: Vec<MetaTuple> = Vec::with_capacity(tuples.len());
        'outer: for t in tuples {
            // Subsumed by something kept already?
            for q in &kept {
                if subsumes(q, &t) {
                    continue 'outer;
                }
            }
            // Remove kept entries the newcomer subsumes.
            kept.retain(|q| !subsumes(&t, q));
            kept.push(t);
        }
        self.tuples = kept;
    }

    /// Per-column visibility of one answer tuple.
    pub fn coverage(&self, tuple: &Tuple) -> Vec<bool> {
        let mut visible = vec![false; self.schema.arity()];
        for mt in &self.tuples {
            if admits(mt, tuple) {
                for (i, c) in mt.cells.iter().enumerate() {
                    if c.starred {
                        visible[i] = true;
                    }
                }
            }
        }
        visible
    }

    /// Apply the mask to the answer.
    pub fn apply(&self, answer: &Relation) -> MaskedRelation {
        let _stage = motro_obs::profile::stage("mask.apply");
        let t_apply = motro_obs::start();
        let mut rows = Vec::new();
        let mut withheld = 0usize;
        for t in answer.rows() {
            let vis = self.coverage(t);
            if vis.iter().any(|&v| v) {
                let row: Vec<Option<Value>> = t
                    .values()
                    .iter()
                    .zip(&vis)
                    .map(|(v, &ok)| if ok { Some(v.clone()) } else { None })
                    .collect();
                rows.push(row);
            } else {
                withheld += 1;
            }
        }
        // Masking can introduce duplicate delivered rows; set semantics
        // apply to what the user sees.
        let mut seen = std::collections::BTreeSet::new();
        rows.retain(|r| seen.insert(format!("{r:?}")));
        let out = MaskedRelation {
            schema: self.schema.clone(),
            rows,
            withheld,
        };
        motro_obs::profile::annotate("rows_in", answer.len());
        motro_obs::profile::annotate("delivered", out.rows.len());
        motro_obs::profile::annotate("withheld", withheld);
        motro_obs::profile::annotate("mask_tuples", self.tuples.len());
        motro_obs::histogram!("mask.apply_ns").record_since(t_apply);
        motro_obs::counter!("mask.rows.delivered").add(out.rows.len() as u64);
        motro_obs::counter!("mask.rows.withheld").add(withheld as u64);
        motro_obs::counter!("mask.cells.delivered").add(out.visible_cells() as u64);
        motro_obs::counter!("mask.cells.masked")
            .add((out.total_cells() - out.visible_cells()) as u64);
        out
    }

    /// Per-mask-tuple coverage of one answer tuple: for each mask tuple
    /// (in order), `Ok(())` when it admits the row, `Err(reason)` with a
    /// human-readable explanation when it does not. Drives EXPLAIN.
    pub fn admit_reasons(&self, tuple: &Tuple) -> Vec<Result<(), String>> {
        self.tuples
            .iter()
            .map(|mt| admit_explain(mt, tuple, &self.schema))
            .collect()
    }

    /// A deterministic, byte-stable rendering of the mask: the schema's
    /// display headers followed by every meta-tuple's display form, one
    /// per line, sorted. Two masks that admit exactly the same
    /// meta-tuples render identically regardless of pipeline ordering
    /// or executor parallelism — this is what the audit journal records
    /// and what `motro-audit replay` compares byte-for-byte.
    pub fn canonical_render(&self) -> String {
        let mut lines: Vec<String> = self.tuples.iter().map(|t| t.to_string()).collect();
        lines.sort();
        let mut out = format!("({})", self.schema.display_headers().join(", "));
        for l in &lines {
            out.push('\n');
            out.push_str(l);
        }
        out
    }

    /// The inferred `permit` statements describing the delivered
    /// portions. A full-access mask yields none (the paper delivers such
    /// answers "without any accompanying permit statements").
    pub fn describe(&self) -> Vec<PermitStatement> {
        if self.is_full() {
            return Vec::new();
        }
        self.tuples
            .iter()
            .map(|t| PermitStatement::from_meta(t, &self.schema))
            .collect()
    }
}

/// Does mask tuple `q` reveal at least as much as `t` on every answer?
///
/// Conservative test: `q`'s stars must cover `t`'s; each of `q`'s fields
/// must be blank or identical to `t`'s; `q`'s constraint atoms must be a
/// subset of `t`'s.
fn subsumes(q: &MetaTuple, t: &MetaTuple) -> bool {
    if q.cells.len() != t.cells.len() {
        return false;
    }
    for (qc, tc) in q.cells.iter().zip(&t.cells) {
        if tc.starred && !qc.starred {
            return false;
        }
        match &qc.content {
            CellContent::Blank => {}
            c if *c == tc.content => {}
            _ => return false,
        }
    }
    q.constraints
        .atoms()
        .iter()
        .all(|a| t.constraints.atoms().contains(a))
}

/// [`admits`] with a reason on failure, rendered against `schema`'s
/// column names.
fn admit_explain(mt: &MetaTuple, t: &Tuple, schema: &RelSchema) -> Result<(), String> {
    let headers = schema.display_headers();
    let mut binding: HashMap<VarId, Value> = HashMap::new();
    let mut first_pos: HashMap<VarId, usize> = HashMap::new();
    for (i, (cell, v)) in mt.cells.iter().zip(t.values()).enumerate() {
        match &cell.content {
            CellContent::Blank => {}
            CellContent::Const(c) => {
                if c != v {
                    return Err(format!("requires {} = {c}, row has {v}", headers[i]));
                }
            }
            CellContent::Var(x) => match binding.get(x) {
                Some(b) if b != v => {
                    let j = first_pos[x];
                    return Err(format!(
                        "requires {} = {} (shared variable), row has {b} vs {v}",
                        headers[j], headers[i]
                    ));
                }
                Some(_) => {}
                None => {
                    binding.insert(*x, v.clone());
                    first_pos.insert(*x, i);
                }
            },
        }
    }
    if mt
        .constraints
        .eval(&|x| binding.get(&x).cloned())
        .unwrap_or(false)
    {
        Ok(())
    } else {
        Err(format!("condition {} fails for this row", mt.constraints))
    }
}

/// Does `mt` cover answer tuple `t`?
fn admits(mt: &MetaTuple, t: &Tuple) -> bool {
    let mut binding: HashMap<VarId, Value> = HashMap::new();
    for (cell, v) in mt.cells.iter().zip(t.values()) {
        if !cell_admits(cell, v, &mut binding) {
            return false;
        }
    }
    // All constraint variables appear in some cell (projection dropped
    // tuples whose constrained variables lost their fields), so the
    // binding is total for them; anything undecided is conservatively
    // denied.
    mt.constraints
        .eval(&|x| binding.get(&x).cloned())
        .unwrap_or(false)
}

/// A masked answer: the query's schema with per-cell visibility.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaskedRelation {
    /// The answer schema.
    pub schema: RelSchema,
    /// Delivered rows; `None` cells are masked.
    pub rows: Vec<Vec<Option<Value>>>,
    /// Answer tuples withheld entirely.
    pub withheld: usize,
}

impl MaskedRelation {
    /// Number of delivered (partially or fully visible) rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// No rows delivered.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Count of visible cells.
    pub fn visible_cells(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.iter().filter(|c| c.is_some()).count())
            .sum()
    }

    /// Total cells across delivered rows.
    pub fn total_cells(&self) -> usize {
        self.rows.len() * self.schema.arity()
    }

    /// Render with masked cells shown as `#` (the paper masks values but
    /// keeps the result's structure).
    pub fn to_table(&self) -> String {
        let headers = self.schema.display_headers();
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                r.iter()
                    .map(|c| match c {
                        Some(v) => v.to_string(),
                        None => "#".to_owned(),
                    })
                    .collect()
            })
            .collect();
        render_table(&headers, &rows)
    }
}

/// One condition of an inferred `permit` statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PermitCondition {
    /// `ATTR θ constant`.
    AttrConst {
        /// Attribute display name.
        attr: String,
        /// Comparator.
        op: motro_rel::CompOp,
        /// Constant.
        value: Value,
    },
    /// `ATTR θ ATTR`.
    AttrAttr {
        /// Left attribute display name.
        lhs: String,
        /// Comparator.
        op: motro_rel::CompOp,
        /// Right attribute display name.
        rhs: String,
    },
}

impl fmt::Display for PermitCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PermitCondition::AttrConst { attr, op, value } => {
                write!(f, "{attr} {op} {value}")
            }
            PermitCondition::AttrAttr { lhs, op, rhs } => write!(f, "{lhs} {op} {rhs}"),
        }
    }
}

/// An inferred `permit` statement: the paper's
/// `permit (NUMBER, SPONSOR) where SPONSOR = Acme`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PermitStatement {
    /// Attributes delivered by this portion.
    pub attrs: Vec<String>,
    /// Conditions delimiting the portion.
    pub conditions: Vec<PermitCondition>,
}

impl PermitStatement {
    /// Derive the statement for one mask tuple over the answer schema.
    pub fn from_meta(t: &MetaTuple, schema: &RelSchema) -> PermitStatement {
        let headers = schema.display_headers();
        let attrs: Vec<String> = t
            .cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.starred)
            .map(|(i, _)| headers[i].clone())
            .collect();
        let mut conditions = Vec::new();
        // Constant fields.
        for (i, c) in t.cells.iter().enumerate() {
            if let CellContent::Const(v) = &c.content {
                conditions.push(PermitCondition::AttrConst {
                    attr: headers[i].clone(),
                    op: motro_rel::CompOp::Eq,
                    value: v.clone(),
                });
            }
        }
        // Variable fields: shared positions become equalities; atoms
        // become conditions anchored at the variable's first position.
        let mut var_positions: HashMap<VarId, Vec<usize>> = HashMap::new();
        for (i, c) in t.cells.iter().enumerate() {
            if let CellContent::Var(x) = c.content {
                var_positions.entry(x).or_default().push(i);
            }
        }
        let mut vars: Vec<(&VarId, &Vec<usize>)> = var_positions.iter().collect();
        vars.sort();
        for (x, positions) in vars {
            for w in positions.windows(2) {
                conditions.push(PermitCondition::AttrAttr {
                    lhs: headers[w[0]].clone(),
                    op: motro_rel::CompOp::Eq,
                    rhs: headers[w[1]].clone(),
                });
            }
            let anchor = positions[0];
            for a in t.constraints.atoms() {
                if a.lhs == *x {
                    match &a.rhs {
                        crate::constraint::Rhs::Const(v) => {
                            conditions.push(PermitCondition::AttrConst {
                                attr: headers[anchor].clone(),
                                op: a.op,
                                value: v.clone(),
                            });
                        }
                        crate::constraint::Rhs::Var(y) => {
                            if let Some(ps) = var_positions.get(y) {
                                conditions.push(PermitCondition::AttrAttr {
                                    lhs: headers[anchor].clone(),
                                    op: a.op,
                                    rhs: headers[ps[0]].clone(),
                                });
                            }
                        }
                    }
                }
            }
        }
        PermitStatement { attrs, conditions }
    }
}

impl fmt::Display for PermitStatement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "permit ({})", self.attrs.join(", "))?;
        for (i, c) in self.conditions.iter().enumerate() {
            if i == 0 {
                write!(f, " where {c}")?;
            } else {
                write!(f, " and {c}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{ConstraintAtom, ConstraintSet};
    use crate::metatuple::MetaCell;
    use motro_rel::{tuple, CompOp, Domain};

    fn schema() -> RelSchema {
        RelSchema::base(
            "PROJECT",
            &[
                ("NUMBER", Domain::Str),
                ("SPONSOR", Domain::Str),
                ("BUDGET", Domain::Int),
            ],
        )
    }

    fn answer() -> Relation {
        Relation::from_rows(
            schema(),
            vec![
                tuple!["bq-45", "Acme", 300_000],
                tuple!["sv-72", "Apex", 450_000],
                tuple!["vg-13", "Summit", 150_000],
            ],
        )
        .unwrap()
    }

    fn mt(view: &str, cells: Vec<MetaCell>) -> MetaTuple {
        MetaTuple::new(view, 1, cells, ConstraintSet::empty())
    }

    /// Example 1's mask `(*, Acme*)` over `(NUMBER, SPONSOR)`.
    #[test]
    fn constant_mask_filters_rows() {
        let s = schema().project(&[0, 1]);
        let ans = Relation::from_rows(
            s.clone(),
            vec![tuple!["bq-45", "Acme"], tuple!["sv-72", "Apex"]],
        )
        .unwrap();
        let mask = Mask::new(
            s,
            vec![mt(
                "PSA",
                vec![MetaCell::star(), MetaCell::constant("Acme", true)],
            )],
        );
        let out = mask.apply(&ans);
        assert_eq!(out.len(), 1);
        assert_eq!(out.withheld, 1);
        assert_eq!(out.rows[0][0], Some(Value::str("bq-45")));
        let stmts = mask.describe();
        assert_eq!(stmts.len(), 1);
        assert_eq!(
            stmts[0].to_string(),
            "permit (NUMBER, SPONSOR) where SPONSOR = Acme"
        );
    }

    /// Example 2's mask `(*, ⊔)`: names visible, salaries masked.
    #[test]
    fn column_mask_hides_cells() {
        let s = RelSchema::base("E", &[("NAME", Domain::Str), ("SALARY", Domain::Int)]);
        let ans = Relation::from_rows(s.clone(), vec![tuple!["Brown", 32_000]]).unwrap();
        let mask = Mask::new(
            s,
            vec![mt("ELP", vec![MetaCell::star(), MetaCell::blank()])],
        );
        let out = mask.apply(&ans);
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows[0][0], Some(Value::str("Brown")));
        assert_eq!(out.rows[0][1], None);
        assert_eq!(out.visible_cells(), 1);
        assert_eq!(out.total_cells(), 2);
        assert_eq!(mask.describe()[0].to_string(), "permit (NAME)");
        assert!(out.to_table().contains('#'));
    }

    #[test]
    fn full_mask_has_no_statements() {
        let s = schema();
        let mask = Mask::new(
            s,
            vec![mt(
                "V",
                vec![MetaCell::star(), MetaCell::star(), MetaCell::star()],
            )],
        );
        assert!(mask.is_full());
        assert!(mask.describe().is_empty());
        let out = mask.apply(&answer());
        assert_eq!(out.len(), 3);
        assert_eq!(out.withheld, 0);
        assert_eq!(out.visible_cells(), 9);
    }

    #[test]
    fn empty_mask_withholds_everything() {
        let mask = Mask::new(schema(), vec![]);
        let out = mask.apply(&answer());
        assert!(out.is_empty());
        assert_eq!(out.withheld, 3);
    }

    #[test]
    fn union_of_mask_tuples() {
        // One tuple reveals NUMBER of Acme rows; another reveals BUDGET
        // everywhere.
        let mask = Mask::new(
            schema(),
            vec![
                mt(
                    "A",
                    vec![
                        MetaCell::star(),
                        MetaCell::constant("Acme", false),
                        MetaCell::blank(),
                    ],
                ),
                mt(
                    "B",
                    vec![MetaCell::blank(), MetaCell::blank(), MetaCell::star()],
                ),
            ],
        );
        let out = mask.apply(&answer());
        assert_eq!(out.len(), 3);
        // Acme row: NUMBER + BUDGET visible.
        assert_eq!(out.rows[0][0], Some(Value::str("bq-45")));
        assert_eq!(out.rows[0][1], None);
        assert_eq!(out.rows[0][2], Some(Value::int(300_000)));
        // Non-Acme rows: only BUDGET.
        assert_eq!(out.rows[1][0], None);
        assert_eq!(out.rows[1][2], Some(Value::int(450_000)));
    }

    #[test]
    fn shared_variable_requires_equal_values() {
        let s = RelSchema::base("E", &[("A", Domain::Str), ("B", Domain::Str)]);
        let ans = Relation::from_rows(s.clone(), vec![tuple!["x", "x"], tuple!["x", "y"]]).unwrap();
        let mask = Mask::new(
            s,
            vec![mt(
                "V",
                vec![MetaCell::var(1, true), MetaCell::var(1, true)],
            )],
        );
        let out = mask.apply(&ans);
        assert_eq!(out.len(), 1);
        assert_eq!(out.withheld, 1);
        // Description includes the equality.
        let d = mask.describe();
        assert_eq!(d[0].to_string(), "permit (A, B) where A = B");
    }

    #[test]
    fn variable_constraints_checked_at_application() {
        let s = RelSchema::base("P", &[("BUDGET", Domain::Int)]);
        let ans = Relation::from_rows(s.clone(), vec![tuple![300_000], tuple![100_000]]).unwrap();
        let t = MetaTuple::new(
            "V",
            1,
            vec![MetaCell::var(3, true)],
            ConstraintSet::new(vec![ConstraintAtom::var_const(3, CompOp::Ge, 250_000)]),
        );
        let mask = Mask::new(s, vec![t]);
        let out = mask.apply(&ans);
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows[0][0], Some(Value::int(300_000)));
        assert_eq!(
            mask.describe()[0].to_string(),
            "permit (BUDGET) where BUDGET >= 250000"
        );
    }

    #[test]
    fn minimization_drops_subsumed_tuples() {
        let full = mt(
            "V",
            vec![MetaCell::star(), MetaCell::star(), MetaCell::star()],
        );
        let partial = mt(
            "W",
            vec![MetaCell::star(), MetaCell::blank(), MetaCell::blank()],
        );
        let mask = Mask::new(schema(), vec![partial, full]);
        assert_eq!(mask.len(), 1);
        assert!(mask.is_full());
    }

    #[test]
    fn minimization_keeps_incomparable_tuples() {
        let a = mt(
            "A",
            vec![
                MetaCell::star(),
                MetaCell::constant("Acme", true),
                MetaCell::blank(),
            ],
        );
        let b = mt(
            "B",
            vec![MetaCell::blank(), MetaCell::blank(), MetaCell::star()],
        );
        let mask = Mask::new(schema(), vec![a, b]);
        assert_eq!(mask.len(), 2);
    }

    #[test]
    fn var_var_constraint_in_description_and_application() {
        // "Occurrence 1 earns more than occurrence 2" as a mask.
        let s = RelSchema::base("E", &[("SALARY", Domain::Int), ("SALARY", Domain::Int)]);
        let t = MetaTuple::new(
            "V",
            1,
            vec![MetaCell::var(1, true), MetaCell::var(2, true)],
            ConstraintSet::new(vec![ConstraintAtom::var_var(1, CompOp::Gt, 2)]),
        );
        let mask = Mask::new(s.clone(), vec![t]);
        let ans =
            Relation::from_rows(s, vec![tuple![20, 10], tuple![10, 20], tuple![5, 5]]).unwrap();
        let out = mask.apply(&ans);
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows[0][0], Some(Value::int(20)));
        let d = mask.describe();
        assert_eq!(
            d[0].to_string(),
            "permit (SALARY:1, SALARY:2) where SALARY:1 > SALARY:2"
        );
    }

    #[test]
    fn subsumption_respects_constraints() {
        // Same cells, but one tuple carries an extra constraint: the
        // unconstrained one subsumes it.
        let s = RelSchema::base("P", &[("BUDGET", Domain::Int)]);
        let free = MetaTuple::new("A", 1, vec![MetaCell::var(1, true)], ConstraintSet::empty());
        let tight = MetaTuple::new(
            "B",
            2,
            vec![MetaCell::var(1, true)],
            ConstraintSet::new(vec![ConstraintAtom::var_const(1, CompOp::Ge, 10)]),
        );
        let mask = Mask::new(s.clone(), vec![tight.clone(), free.clone()]);
        assert_eq!(mask.len(), 1);
        assert!(mask.tuples[0].constraints.is_empty());
        // The reverse does not subsume.
        let mask2 = Mask::new(s, vec![tight.clone(), tight]);
        assert_eq!(mask2.len(), 1, "identical tuples dedupe");
    }

    #[test]
    fn unstarred_condition_column_filters_but_hides() {
        // Mask (⊔*, Acme) — NUMBER revealed only where SPONSOR = Acme,
        // and SPONSOR itself stays masked.
        let s = schema().project(&[0, 1]);
        let ans = Relation::from_rows(
            s.clone(),
            vec![tuple!["bq-45", "Acme"], tuple!["sv-72", "Apex"]],
        )
        .unwrap();
        let mask = Mask::new(
            s,
            vec![mt(
                "V",
                vec![MetaCell::star(), MetaCell::constant("Acme", false)],
            )],
        );
        let out = mask.apply(&ans);
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows[0][0], Some(Value::str("bq-45")));
        assert_eq!(out.rows[0][1], None);
        // The statement exposes the condition but not the column.
        let d = mask.describe();
        assert_eq!(d[0].to_string(), "permit (NUMBER) where SPONSOR = Acme");
    }

    #[test]
    fn canonical_render_is_order_insensitive() {
        let a = mt(
            "A",
            vec![
                MetaCell::star(),
                MetaCell::constant("Acme", true),
                MetaCell::blank(),
            ],
        );
        let b = mt(
            "B",
            vec![MetaCell::blank(), MetaCell::blank(), MetaCell::star()],
        );
        let m1 = Mask::new(schema(), vec![a.clone(), b.clone()]);
        let m2 = Mask::new(schema(), vec![b, a]);
        assert_eq!(m1.canonical_render(), m2.canonical_render());
        assert!(m1
            .canonical_render()
            .starts_with("(NUMBER, SPONSOR, BUDGET)\n"));
    }

    #[test]
    fn masked_duplicate_rows_collapse() {
        // Masking SALARY can make two employees look identical.
        let s = RelSchema::base("E", &[("TITLE", Domain::Str), ("SALARY", Domain::Int)]);
        let ans =
            Relation::from_rows(s.clone(), vec![tuple!["eng", 10], tuple!["eng", 20]]).unwrap();
        let mask = Mask::new(s, vec![mt("V", vec![MetaCell::star(), MetaCell::blank()])]);
        let out = mask.apply(&ans);
        assert_eq!(out.len(), 1);
    }
}
