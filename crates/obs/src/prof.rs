//! Continuous profiling and per-user cost accounting.
//!
//! The per-request profile trees of [`crate::profile`] answer "why was
//! *this* request slow"; this module answers "where do CPU and memory
//! go across *all* requests". The server folds every finished span tree
//! into the global [`Aggregator`] ([`global`]), which keeps cumulative
//! collapsed-stack form — stage path (`root;child;grandchild`) → total
//! wall-ns, self-ns, attributed allocation bytes/counts, and
//! invocations — plus a sliding per-window retention mirroring
//! [`crate::window::WindowLayer`].
//!
//! Two renderings serve the aggregate: [`Aggregator::collapsed`]
//! produces the standard collapsed-stack text (`a;b;c VALUE`, one line
//! per path, value = self time so a flamegraph tool can re-fold it) and
//! [`Aggregator::flame_svg`] a self-contained hand-rolled flamegraph
//! SVG — both exposed over the metrics listener as `/debug/flame` and
//! `/debug/flame.svg`.
//!
//! Alongside the stage aggregate, the [`Ledger`] ([`ledger`]) accounts
//! each principal's cumulative cost — requests, wall-ns, allocation
//! bytes, cells masked, cache hits — surfaced by the `top` wire command
//! and as `motro_user_cost_*` Prometheus series
//! ([`Ledger::prometheus`]). Cardinality is bounded: past
//! [`LEDGER_MAX_USERS`] distinct principals, new ones are pooled under
//! `(other)`.

use crate::window::WindowConfig;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::OnceLock;
use std::time::Instant;

/// Cumulative statistics for one stage path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageStats {
    /// How many times the stage ran.
    pub invocations: u64,
    /// Total wall time, including child stages.
    pub wall_ns: u64,
    /// Total wall time minus time attributed to child stages.
    pub self_ns: u64,
    /// Allocation bytes attributed to the stage (including children).
    pub alloc_bytes: u64,
    /// Allocation count attributed to the stage (including children).
    pub allocs: u64,
}

impl StageStats {
    fn absorb(&mut self, node: &crate::ProfileNode) {
        let child_wall: u64 = node.children.iter().map(|c| c.duration_ns).sum();
        self.invocations += 1;
        self.wall_ns += node.duration_ns;
        self.self_ns += node.duration_ns.saturating_sub(child_wall);
        self.alloc_bytes += node.alloc_bytes;
        self.allocs += node.allocs;
    }
}

/// One completed retention window of folded stages.
#[derive(Debug, Clone)]
pub struct ProfWindow {
    /// How long the window actually spanned.
    pub spanned: std::time::Duration,
    /// Stage path → stats folded during the window.
    pub stages: BTreeMap<String, StageStats>,
}

/// Which per-path value a collapsed-stack rendering carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlameMetric {
    /// Self wall time in nanoseconds (the flamegraph default — values
    /// re-fold to each path's inclusive total).
    SelfNs,
    /// Attributed allocation bytes, inclusive of children.
    AllocBytes,
}

struct AggInner {
    config: WindowConfig,
    opened: Instant,
    folds: u64,
    cumulative: BTreeMap<String, StageStats>,
    current: BTreeMap<String, StageStats>,
    windows: VecDeque<ProfWindow>,
}

/// The continuous profile aggregator. Use the process-wide [`global`]
/// instance; standalone instances exist for tests.
pub struct Aggregator {
    inner: Mutex<AggInner>,
}

impl Default for Aggregator {
    fn default() -> Aggregator {
        Aggregator::new(WindowConfig::default())
    }
}

impl Aggregator {
    /// A fresh aggregator with the given window layout.
    pub fn new(config: WindowConfig) -> Aggregator {
        Aggregator {
            inner: Mutex::new(AggInner {
                config,
                opened: Instant::now(),
                folds: 0,
                cumulative: BTreeMap::new(),
                current: BTreeMap::new(),
                windows: VecDeque::new(),
            }),
        }
    }

    /// Replace the window layout (length + retention). Keeps cumulative
    /// totals; restarts the current window.
    pub fn configure(&self, config: WindowConfig) {
        let mut inner = self.inner.lock();
        inner.config = config;
        inner.opened = Instant::now();
        inner.current.clear();
    }

    /// Fold one finished profile tree into the cumulative and
    /// current-window aggregates. Also bumps the `prof.*` registry
    /// metrics (folds, attributed bytes/allocs, fold cost).
    pub fn fold(&self, node: &crate::ProfileNode) {
        let t = crate::start();
        let mut inner = self.inner.lock();
        roll_if_due(&mut inner, Instant::now());
        inner.folds += 1;
        fold_node(&mut inner.cumulative, node, None);
        fold_node(&mut inner.current, node, None);
        let paths = inner.cumulative.len();
        drop(inner);
        crate::counter!("prof.folds").inc();
        crate::counter!("prof.alloc.bytes").add(node.alloc_bytes);
        crate::counter!("prof.allocs").add(node.allocs);
        crate::gauge!("prof.stage_paths").set(paths as i64);
        if let Some(t) = t {
            crate::histogram!("prof.fold_ns").record_since(Some(t));
        }
    }

    /// Close the current window if it has run its course (called lazily
    /// from read paths, like [`crate::window::WindowLayer`]).
    pub fn roll_if_due(&self) {
        roll_if_due(&mut self.inner.lock(), Instant::now());
    }

    /// Unconditionally close the current window (tests).
    pub fn force_roll(&self) {
        let mut inner = self.inner.lock();
        let due = inner.opened;
        roll(&mut inner, due.elapsed());
    }

    /// Trees folded since creation (or the last [`Aggregator::reset`]).
    pub fn folds(&self) -> u64 {
        self.inner.lock().folds
    }

    /// A copy of the cumulative stage aggregate.
    pub fn stages(&self) -> BTreeMap<String, StageStats> {
        self.inner.lock().cumulative.clone()
    }

    /// The completed retention windows, oldest first.
    pub fn windows(&self) -> Vec<ProfWindow> {
        self.roll_if_due();
        self.inner.lock().windows.iter().cloned().collect()
    }

    /// Drop all aggregated state (tests).
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.folds = 0;
        inner.cumulative.clear();
        inner.current.clear();
        inner.windows.clear();
        inner.opened = Instant::now();
    }

    /// The cumulative aggregate in collapsed-stack text form: one
    /// `path value` line per stage path, sorted by path. With
    /// [`FlameMetric::SelfNs`] the values re-fold: summing every line
    /// under a root reproduces the root's inclusive wall time.
    pub fn collapsed(&self, metric: FlameMetric) -> String {
        self.roll_if_due();
        let inner = self.inner.lock();
        let mut out = String::new();
        for (path, s) in &inner.cumulative {
            let v = match metric {
                FlameMetric::SelfNs => s.self_ns,
                FlameMetric::AllocBytes => s.alloc_bytes,
            };
            let _ = writeln!(out, "{path} {v}");
        }
        out
    }

    /// Render the cumulative aggregate as a self-contained flamegraph
    /// SVG (icicle layout, wall-time widths, per-node tooltips).
    pub fn flame_svg(&self) -> String {
        self.roll_if_due();
        let inner = self.inner.lock();
        render_svg(&inner.cumulative, inner.folds)
    }

    /// A JSON rendering of the aggregate for the `prof` wire reply:
    /// window layout, fold count, cumulative per-path stats, and
    /// per-window totals.
    pub fn to_json(&self) -> String {
        self.roll_if_due();
        let inner = self.inner.lock();
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"window_secs\":{},\"retention\":{},\"completed\":{},\"folds\":{},\"stages\":[",
            inner.config.window.as_secs(),
            inner.config.retention,
            inner.windows.len(),
            inner.folds
        );
        for (i, (path, s)) in inner.cumulative.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"path\":\"{}\",\"invocations\":{},\"wall_ns\":{},\"self_ns\":{},\
                 \"alloc_bytes\":{},\"allocs\":{}}}",
                crate::json_escape(path),
                s.invocations,
                s.wall_ns,
                s.self_ns,
                s.alloc_bytes,
                s.allocs
            );
        }
        out.push_str("],\"windows\":[");
        for (i, w) in inner.windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let wall: u64 = w.stages.values().map(|s| s.self_ns).sum();
            let bytes: u64 = w
                .stages
                .iter()
                .filter(|(p, _)| !p.contains(';'))
                .map(|(_, s)| s.alloc_bytes)
                .sum();
            let _ = write!(
                out,
                "{{\"spanned_ms\":{},\"paths\":{},\"wall_ns\":{wall},\"alloc_bytes\":{bytes}}}",
                w.spanned.as_millis(),
                w.stages.len()
            );
        }
        out.push_str("]}");
        out
    }
}

fn roll_if_due(inner: &mut AggInner, now: Instant) {
    let elapsed = now.duration_since(inner.opened);
    if elapsed >= inner.config.window {
        roll(inner, elapsed);
    }
}

fn roll(inner: &mut AggInner, spanned: std::time::Duration) {
    let stages = std::mem::take(&mut inner.current);
    inner.windows.push_back(ProfWindow { spanned, stages });
    while inner.windows.len() > inner.config.retention {
        inner.windows.pop_front();
    }
    inner.opened = Instant::now();
}

/// Collapse a stage name into one path frame: `;` is the frame
/// separator and a space ends the frame in collapsed-stack grammar, so
/// both fold to `_`.
fn frame_name(stage: &str) -> String {
    stage
        .chars()
        .map(|c| {
            if c == ';' || c.is_whitespace() {
                '_'
            } else {
                c
            }
        })
        .collect()
}

fn fold_node(
    map: &mut BTreeMap<String, StageStats>,
    node: &crate::ProfileNode,
    prefix: Option<&str>,
) {
    let path = match prefix {
        Some(p) => format!("{p};{}", frame_name(&node.stage)),
        None => frame_name(&node.stage),
    };
    map.entry(path.clone()).or_default().absorb(node);
    for c in &node.children {
        fold_node(map, c, Some(&path));
    }
}

/// The process-wide aggregator the server folds into.
pub fn global() -> &'static Aggregator {
    static GLOBAL: OnceLock<Aggregator> = OnceLock::new();
    GLOBAL.get_or_init(Aggregator::default)
}

// ---------------------------------------------------------------------
// Flamegraph SVG
// ---------------------------------------------------------------------

const SVG_WIDTH: f64 = 1200.0;
const SVG_MARGIN: f64 = 10.0;
const ROW_H: f64 = 17.0;
const HEADER_H: f64 = 28.0;

#[derive(Default)]
struct FlameNode {
    stats: StageStats,
    children: BTreeMap<String, FlameNode>,
}

fn build_tree(stages: &BTreeMap<String, StageStats>) -> FlameNode {
    let mut root = FlameNode::default();
    for (path, s) in stages {
        let mut node = &mut root;
        for frame in path.split(';') {
            node = node.children.entry(frame.to_owned()).or_default();
        }
        node.stats = *s;
    }
    root
}

fn xml_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// A warm, deterministic fill color derived from the frame name
/// (FNV-1a over the name bytes).
fn color(name: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!(
        "rgb({},{},{})",
        200 + (h % 56) as u8,
        60 + ((h >> 8) % 120) as u8,
        30 + ((h >> 16) % 40) as u8
    )
}

fn depth_of(node: &FlameNode) -> usize {
    1 + node.children.values().map(depth_of).max().unwrap_or(0)
}

fn render_svg(stages: &BTreeMap<String, StageStats>, folds: u64) -> String {
    let root = build_tree(stages);
    let total: u64 = root.children.values().map(|c| c.stats.wall_ns).sum();
    let depth = depth_of(&root).saturating_sub(1).max(1);
    let height = HEADER_H + depth as f64 * ROW_H + SVG_MARGIN;
    let mut out = String::from("<?xml version=\"1.0\" standalone=\"no\"?>\n");
    let _ = writeln!(
        out,
        "<svg version=\"1.1\" width=\"{SVG_WIDTH}\" height=\"{height}\" \
         xmlns=\"http://www.w3.org/2000/svg\">"
    );
    let _ = writeln!(
        out,
        "<rect x=\"0\" y=\"0\" width=\"{SVG_WIDTH}\" height=\"{height}\" fill=\"#f8f8f8\"/>"
    );
    let _ = writeln!(
        out,
        "<text x=\"{SVG_MARGIN}\" y=\"18\" font-size=\"13\" font-family=\"monospace\">\
         motro continuous profile — {} stage paths, {} requests folded, {total}ns total</text>",
        stages.len(),
        folds
    );
    let usable = SVG_WIDTH - 2.0 * SVG_MARGIN;
    let scale = if total == 0 {
        0.0
    } else {
        usable / total as f64
    };
    let mut x = SVG_MARGIN;
    for (name, child) in &root.children {
        render_node(&mut out, name, name, child, x, 0, scale);
        x += child.stats.wall_ns as f64 * scale;
    }
    out.push_str("</svg>\n");
    out
}

fn render_node(
    out: &mut String,
    name: &str,
    path: &str,
    node: &FlameNode,
    x: f64,
    depth: usize,
    scale: f64,
) {
    let w = node.stats.wall_ns as f64 * scale;
    if w < 0.2 {
        return;
    }
    let y = HEADER_H + depth as f64 * ROW_H;
    let s = &node.stats;
    let _ = writeln!(
        out,
        "<g><rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{w:.2}\" height=\"{:.2}\" \
         fill=\"{}\" stroke=\"#f8f8f8\" stroke-width=\"0.5\"/>",
        ROW_H - 1.0,
        color(name)
    );
    if w >= 40.0 {
        let label: String = name.chars().take((w / 7.0) as usize).collect();
        let _ = writeln!(
            out,
            "<text x=\"{:.2}\" y=\"{:.2}\" font-size=\"11\" font-family=\"monospace\">{}</text>",
            x + 2.0,
            y + 12.0,
            xml_escape(&label)
        );
    }
    let _ = writeln!(
        out,
        "<title>{} — {}ns total, {}ns self, {}B allocated ({} allocs), x{}</title></g>",
        xml_escape(path),
        s.wall_ns,
        s.self_ns,
        s.alloc_bytes,
        s.allocs,
        s.invocations
    );
    let mut cx = x;
    for (cname, child) in &node.children {
        let cpath = format!("{path};{cname}");
        render_node(out, cname, &cpath, child, cx, depth + 1, scale);
        cx += child.stats.wall_ns as f64 * scale;
    }
}

// ---------------------------------------------------------------------
// Per-user cost ledger
// ---------------------------------------------------------------------

/// Distinct principals the ledger tracks before pooling new ones into
/// the `(other)` bucket — a hard bound on Prometheus label cardinality.
pub const LEDGER_MAX_USERS: usize = 256;

/// The pooled-principal bucket name used past [`LEDGER_MAX_USERS`].
pub const LEDGER_OTHER: &str = "(other)";

/// One principal's cumulative cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UserCost {
    /// Requests served (statement requests: retrieve/query/profile).
    pub requests: u64,
    /// Total request wall time in nanoseconds.
    pub wall_ns: u64,
    /// Allocation bytes attributed to the principal's requests.
    pub alloc_bytes: u64,
    /// Answer cells masked (nulled cells + cells of withheld rows).
    pub cells_masked: u64,
    /// Requests answered from the mask cache.
    pub cache_hits: u64,
}

impl UserCost {
    fn absorb(&mut self, d: &UserCost) {
        self.requests += d.requests;
        self.wall_ns += d.wall_ns;
        self.alloc_bytes += d.alloc_bytes;
        self.cells_masked += d.cells_masked;
        self.cache_hits += d.cache_hits;
    }
}

/// The per-user cost-accounting ledger. Use the process-wide
/// [`ledger`] instance.
#[derive(Default)]
pub struct Ledger {
    inner: Mutex<BTreeMap<String, UserCost>>,
}

impl Ledger {
    /// Add `delta` to `user`'s account. Past [`LEDGER_MAX_USERS`]
    /// distinct users, unseen principals pool under [`LEDGER_OTHER`].
    pub fn charge(&self, user: &str, delta: &UserCost) {
        let mut inner = self.inner.lock();
        if !inner.contains_key(user) && inner.len() >= LEDGER_MAX_USERS {
            inner
                .entry(LEDGER_OTHER.to_owned())
                .or_default()
                .absorb(delta);
            return;
        }
        inner.entry(user.to_owned()).or_default().absorb(delta);
    }

    /// The `n` costliest principals by wall time, descending (ties
    /// broken by name for determinism). `n == 0` returns everyone.
    pub fn top(&self, n: usize) -> Vec<(String, UserCost)> {
        let inner = self.inner.lock();
        let mut rows: Vec<(String, UserCost)> =
            inner.iter().map(|(k, v)| (k.clone(), *v)).collect();
        rows.sort_by(|a, b| b.1.wall_ns.cmp(&a.1.wall_ns).then(a.0.cmp(&b.0)));
        if n > 0 {
            rows.truncate(n);
        }
        rows
    }

    /// Number of principals tracked.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Is the ledger empty?
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Drop all accounts (tests).
    pub fn reset(&self) {
        self.inner.lock().clear();
    }

    /// Render the ledger as Prometheus `motro_user_cost_*` counter
    /// series with a `user` label. Empty string while the ledger is
    /// empty, so expositions without cost accounting stay byte-
    /// identical to the pre-ledger format.
    pub fn prometheus(&self) -> String {
        let inner = self.inner.lock();
        if inner.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        type Series = (&'static str, fn(&UserCost) -> u64);
        let series: [Series; 5] = [
            ("motro_user_cost_requests", |c| c.requests),
            ("motro_user_cost_wall_ns", |c| c.wall_ns),
            ("motro_user_cost_alloc_bytes", |c| c.alloc_bytes),
            ("motro_user_cost_cells_masked", |c| c.cells_masked),
            ("motro_user_cost_cache_hits", |c| c.cache_hits),
        ];
        for (name, get) in series {
            let _ = writeln!(out, "# TYPE {name} counter");
            for (user, cost) in inner.iter() {
                let _ = writeln!(
                    out,
                    "{name}{{user=\"{}\"}} {}",
                    crate::prom::escape_label_value(user),
                    get(cost)
                );
            }
        }
        out
    }
}

/// The process-wide cost ledger the server charges into.
pub fn ledger() -> &'static Ledger {
    static GLOBAL: OnceLock<Ledger> = OnceLock::new();
    GLOBAL.get_or_init(Ledger::default)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProfileNode;

    fn node(stage: &str, dur: u64, bytes: u64, children: Vec<ProfileNode>) -> ProfileNode {
        ProfileNode {
            stage: stage.to_owned(),
            span_id: 0,
            duration_ns: dur,
            alloc_bytes: bytes,
            allocs: if bytes > 0 { 1 } else { 0 },
            fields: Vec::new(),
            children,
        }
    }

    fn request_tree() -> ProfileNode {
        node(
            "server.request",
            1000,
            600,
            vec![
                node("parse", 200, 100, Vec::new()),
                node(
                    "mask.compute",
                    500,
                    400,
                    vec![node("meta.select", 300, 200, Vec::new())],
                ),
            ],
        )
    }

    #[test]
    fn fold_accumulates_paths_and_self_times() {
        let agg = Aggregator::default();
        agg.fold(&request_tree());
        agg.fold(&request_tree());
        let stages = agg.stages();
        let root = &stages["server.request"];
        assert_eq!(root.invocations, 2);
        assert_eq!(root.wall_ns, 2000);
        assert_eq!(root.self_ns, 2 * (1000 - 700));
        assert_eq!(root.alloc_bytes, 1200);
        let sel = &stages["server.request;mask.compute;meta.select"];
        assert_eq!(sel.wall_ns, 600);
        assert_eq!(sel.self_ns, 600);
        // Self times re-fold to the root's inclusive wall time.
        let folded: u64 = stages.values().map(|s| s.self_ns).sum();
        assert_eq!(folded, root.wall_ns);
        assert_eq!(agg.folds(), 2);
    }

    #[test]
    fn collapsed_text_matches_the_grammar() {
        let agg = Aggregator::default();
        agg.fold(&request_tree());
        let text = agg.collapsed(FlameMetric::SelfNs);
        let mut total = 0u64;
        for line in text.lines() {
            let (path, value) = line.rsplit_once(' ').expect("`path value` lines");
            assert!(!path.is_empty() && !path.contains("  "));
            for frame in path.split(';') {
                assert!(!frame.is_empty(), "empty frame in {line}");
            }
            total += value.parse::<u64>().expect("numeric value");
        }
        assert_eq!(total, 1000, "self values re-fold to the root total");
        let bytes = agg.collapsed(FlameMetric::AllocBytes);
        assert!(bytes.contains("server.request;parse 100"), "{bytes}");
    }

    #[test]
    fn stage_names_are_sanitized_for_the_path_grammar() {
        let agg = Aggregator::default();
        agg.fold(&node("odd stage;name", 10, 0, Vec::new()));
        let text = agg.collapsed(FlameMetric::SelfNs);
        assert_eq!(text.trim(), "odd_stage_name 10");
    }

    #[test]
    fn windows_roll_and_retain() {
        let agg = Aggregator::new(WindowConfig {
            window: std::time::Duration::from_secs(3600),
            retention: 2,
        });
        for _ in 0..3 {
            agg.fold(&request_tree());
            agg.force_roll();
        }
        let windows = agg.windows();
        assert_eq!(windows.len(), 2, "retention bounds the deque");
        assert!(windows[0].stages.contains_key("server.request"));
        // Cumulative totals survive rolling.
        assert_eq!(agg.stages()["server.request"].invocations, 3);
        let json = agg.to_json();
        assert!(json.contains("\"folds\":3"), "{json}");
        assert!(json.contains("\"windows\":["), "{json}");
    }

    #[test]
    fn svg_is_well_formed_and_labelled() {
        let agg = Aggregator::default();
        agg.fold(&request_tree());
        let svg = agg.flame_svg();
        assert!(svg.starts_with("<?xml"));
        assert!(svg.contains("<svg ") && svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<g>").count(), svg.matches("</g>").count());
        assert!(svg.matches("<rect").count() >= 4, "one rect per stage");
        assert!(svg.contains("server.request;mask.compute;meta.select"));
        assert!(svg.contains("300ns self"), "tooltip carries self time");
    }

    #[test]
    fn empty_aggregate_still_renders() {
        let agg = Aggregator::default();
        assert_eq!(agg.collapsed(FlameMetric::SelfNs), "");
        let svg = agg.flame_svg();
        assert!(svg.contains("</svg>"), "{svg}");
    }

    #[test]
    fn ledger_charges_sorts_and_caps() {
        let ledger = Ledger::default();
        ledger.charge(
            "Brown",
            &UserCost {
                requests: 1,
                wall_ns: 500,
                alloc_bytes: 64,
                cells_masked: 2,
                cache_hits: 0,
            },
        );
        ledger.charge(
            "Brown",
            &UserCost {
                requests: 1,
                wall_ns: 300,
                cache_hits: 1,
                ..UserCost::default()
            },
        );
        ledger.charge(
            "Klein",
            &UserCost {
                requests: 1,
                wall_ns: 100,
                ..UserCost::default()
            },
        );
        let top = ledger.top(0);
        assert_eq!(top[0].0, "Brown");
        assert_eq!(top[0].1.requests, 2);
        assert_eq!(top[0].1.wall_ns, 800);
        assert_eq!(top[0].1.cache_hits, 1);
        assert_eq!(top[1].0, "Klein");
        assert_eq!(ledger.top(1).len(), 1);

        let capped = Ledger::default();
        for i in 0..LEDGER_MAX_USERS + 10 {
            capped.charge(
                &format!("user-{i:04}"),
                &UserCost {
                    requests: 1,
                    ..UserCost::default()
                },
            );
        }
        assert_eq!(capped.len(), LEDGER_MAX_USERS + 1, "cap plus (other)");
        let pooled = capped
            .top(0)
            .into_iter()
            .find(|(u, _)| u == LEDGER_OTHER)
            .expect("overflow pools");
        assert_eq!(pooled.1.requests, 10);
    }

    #[test]
    fn ledger_prometheus_series_validate() {
        let ledger = Ledger::default();
        assert_eq!(ledger.prometheus(), "", "empty ledger emits nothing");
        ledger.charge(
            "Brown \"q\"",
            &UserCost {
                requests: 3,
                wall_ns: 999,
                alloc_bytes: 11,
                cells_masked: 4,
                cache_hits: 2,
            },
        );
        let text = ledger.prometheus();
        assert!(text.contains("# TYPE motro_user_cost_requests counter"));
        assert!(text.contains("motro_user_cost_wall_ns{user=\"Brown \\\"q\\\"\"} 999"));
        let names = crate::prom::validate(&text).expect("ledger exposition validates");
        assert!(names.contains("motro_user_cost_cache_hits"));
    }
}
