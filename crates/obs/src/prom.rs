//! Prometheus text exposition (format 0.0.4) over a metrics snapshot —
//! rendered by hand, zero dependencies, so any standard scraper can
//! consume the registry.
//!
//! Mapping: every metric gets the `motro_` prefix and has `.` (and any
//! other character outside `[a-zA-Z0-9_:]`) folded to `_`. Counters and
//! gauges are single samples; histograms expand to the conventional
//! cumulative `_bucket{le="..."}` series (bounds in nanoseconds, from
//! the power-of-4 layout) plus `_sum` and `_count`. Labeled series
//! (e.g. the per-operator executor timings) carry their labels with
//! values escaped per the exposition rules (`\\`, `\"`, `\n`).
//!
//! [`validate`] is a strict grammar checker for the subset this module
//! emits — the scrape smoke tests and CI run every exposition through
//! it, so a rendering regression fails loudly rather than silently
//! producing text Prometheus would drop.

use crate::metrics::{bucket_bound, HistogramSnapshot, MetricsSnapshot, HISTOGRAM_BUCKETS};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Fold a registry name into a valid Prometheus metric name with the
/// `motro_` prefix: characters outside `[a-zA-Z0-9_:]` become `_`.
pub fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("motro_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escape a label value per the exposition format: backslash, double
/// quote, and newline.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

fn render_histogram(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    h: &HistogramSnapshot,
) {
    let mut cumulative = 0u64;
    for (i, n) in h.buckets.iter().enumerate() {
        cumulative += n;
        let le = if i + 1 == HISTOGRAM_BUCKETS {
            "+Inf".to_owned()
        } else {
            bucket_bound(i).to_string()
        };
        let _ = writeln!(
            out,
            "{name}_bucket{} {cumulative}",
            render_labels(labels, Some(("le", &le)))
        );
    }
    let plain = render_labels(labels, None);
    let _ = writeln!(out, "{name}_sum{plain} {}", h.sum_ns);
    let _ = writeln!(out, "{name}_count{plain} {}", h.count);
}

/// Render a snapshot as Prometheus text exposition. Every registered
/// counter, gauge, and histogram (flat and labeled) appears, each base
/// name preceded by exactly one `# TYPE` line.
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snapshot.counters {
        let n = metric_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, v) in &snapshot.gauges {
        let n = metric_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {v}");
    }
    // Group labeled series under their base name so each histogram name
    // gets one TYPE line covering the flat series and every label set.
    type Series<'a> = Vec<(&'a [(String, String)], &'a HistogramSnapshot)>;
    let mut by_name: BTreeMap<String, Series> = BTreeMap::new();
    const NO_LABELS: &[(String, String)] = &[];
    for (name, h) in &snapshot.histograms {
        by_name
            .entry(name.clone())
            .or_default()
            .push((NO_LABELS, h));
    }
    for lh in &snapshot.labeled_histograms {
        by_name
            .entry(lh.name.clone())
            .or_default()
            .push((&lh.labels, &lh.hist));
    }
    for (name, series) in &by_name {
        let n = metric_name(name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        for (labels, h) in series {
            render_histogram(&mut out, &n, labels, h);
        }
    }
    out
}

/// The content type a `/metrics` HTTP response should carry.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// A parsed sample: metric name, label pairs, and value.
type Sample = (String, Vec<(String, String)>, f64);

/// Split a sample line into (name, labels, value), validating label
/// syntax and escapes.
fn parse_sample(line: &str) -> Result<Sample, String> {
    let (head, value_str) = match line.find('{') {
        Some(brace) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| format!("unclosed label set: {line}"))?;
            if close < brace {
                return Err(format!("mismatched braces: {line}"));
            }
            let labels_src = &line[brace + 1..close];
            let mut labels = Vec::new();
            let mut rest = labels_src;
            while !rest.is_empty() {
                let eq = rest
                    .find('=')
                    .ok_or_else(|| format!("label without '=': {labels_src}"))?;
                let key = &rest[..eq];
                if !valid_label_name(key) {
                    return Err(format!("bad label name {key:?} in: {line}"));
                }
                let after = &rest[eq + 1..];
                if !after.starts_with('"') {
                    return Err(format!("unquoted label value in: {line}"));
                }
                // Walk the escaped string body.
                let bytes = after.as_bytes();
                let mut i = 1;
                let mut value = String::new();
                loop {
                    match bytes.get(i) {
                        None => return Err(format!("unterminated label value in: {line}")),
                        Some(b'"') => break,
                        Some(b'\\') => {
                            match bytes.get(i + 1) {
                                Some(b'\\') => value.push('\\'),
                                Some(b'"') => value.push('"'),
                                Some(b'n') => value.push('\n'),
                                _ => return Err(format!("bad escape in label value: {line}")),
                            }
                            i += 2;
                        }
                        Some(_) => {
                            // Advance one UTF-8 character.
                            let s = &after[i..];
                            let c = s.chars().next().unwrap();
                            value.push(c);
                            i += c.len_utf8();
                        }
                    }
                }
                labels.push((key.to_owned(), value));
                rest = &after[i + 1..];
                if let Some(stripped) = rest.strip_prefix(',') {
                    rest = stripped;
                    if rest.is_empty() {
                        return Err(format!("trailing comma in label set: {line}"));
                    }
                } else if !rest.is_empty() {
                    return Err(format!("junk after label value: {line}"));
                }
            }
            (
                line[..brace].to_owned(),
                (labels, line[close + 1..].trim().to_owned()),
            )
        }
        None => {
            let mut parts = line.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| format!("empty sample: {line}"))?;
            let value = parts.collect::<Vec<_>>().join(" ");
            (name.to_owned(), (Vec::new(), value))
        }
    };
    let (labels, value_str) = value_str;
    let value = match value_str.trim() {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v
            .parse::<f64>()
            .map_err(|_| format!("bad sample value {v:?} in: {line}"))?,
    };
    if !valid_metric_name(&head) {
        return Err(format!("bad metric name {head:?} in: {line}"));
    }
    Ok((head, labels, value))
}

/// Validate text exposition against the subset of the 0.0.4 grammar
/// this crate emits, returning the set of *base* metric names seen.
///
/// Checks: every sample parses (name, escaped labels, numeric value);
/// every sample's base name was declared by a preceding `# TYPE` line;
/// histogram series have non-decreasing cumulative buckets ending in a
/// `+Inf` bucket that equals the series' `_count`.
pub fn validate(text: &str) -> Result<std::collections::BTreeSet<String>, String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    // (base name, non-le labels) → (cumulative buckets, saw_inf, count)
    type SeriesKey = (String, Vec<(String, String)>);
    let mut buckets: BTreeMap<SeriesKey, Vec<(f64, f64)>> = BTreeMap::new();
    let mut counts: BTreeMap<SeriesKey, f64> = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().ok_or("TYPE line without a name")?;
            let ty = parts.next().ok_or("TYPE line without a type")?;
            if !valid_metric_name(name) {
                return Err(format!("bad metric name in TYPE line: {line}"));
            }
            if !matches!(
                ty,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("unknown type {ty:?} in: {line}"));
            }
            if types.insert(name.to_owned(), ty.to_owned()).is_some() {
                return Err(format!("duplicate TYPE for {name}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        let (name, labels, value) = parse_sample(line)?;
        // Resolve the base name: histogram samples append a suffix.
        let base = types
            .get(&name)
            .map(|_| name.clone())
            .or_else(|| {
                for suffix in ["_bucket", "_sum", "_count"] {
                    if let Some(b) = name.strip_suffix(suffix) {
                        if types.get(b).is_some_and(|t| t == "histogram") {
                            return Some(b.to_owned());
                        }
                    }
                }
                None
            })
            .ok_or_else(|| format!("sample {name} has no preceding TYPE line"))?;
        let ty = &types[&base];
        if ty == "histogram" {
            let rest_labels: Vec<(String, String)> =
                labels.iter().filter(|(k, _)| k != "le").cloned().collect();
            let key = (base.clone(), rest_labels);
            if name.ends_with("_bucket") {
                let le = labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, v)| v.as_str())
                    .ok_or_else(|| format!("bucket without le label: {line}"))?;
                let bound = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse::<f64>()
                        .map_err(|_| format!("bad le value {le:?}: {line}"))?
                };
                buckets.entry(key).or_default().push((bound, value));
            } else if name.ends_with("_count") {
                counts.insert(key, value);
            }
        } else if labels.iter().any(|(k, _)| k == "le") {
            return Err(format!("le label on non-histogram {base}: {line}"));
        }
    }
    for ((base, labels), series) in &buckets {
        let mut prev_bound = f64::NEG_INFINITY;
        let mut prev_cum = 0.0;
        let mut saw_inf = false;
        for (bound, cum) in series {
            if *bound <= prev_bound {
                return Err(format!("bucket bounds not increasing for {base}{labels:?}"));
            }
            if *cum < prev_cum {
                return Err(format!("cumulative buckets decrease for {base}{labels:?}"));
            }
            prev_bound = *bound;
            prev_cum = *cum;
            if bound.is_infinite() {
                saw_inf = true;
            }
        }
        if !saw_inf {
            return Err(format!("histogram {base}{labels:?} lacks a +Inf bucket"));
        }
        match counts.get(&(base.clone(), labels.clone())) {
            Some(count) if *count == prev_cum => {}
            Some(count) => {
                return Err(format!(
                    "histogram {base}{labels:?}: +Inf bucket {prev_cum} != count {count}"
                ))
            }
            None => return Err(format!("histogram {base}{labels:?} lacks a _count sample")),
        }
    }
    Ok(types.keys().cloned().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{LabeledHistogramSnapshot, Registry};

    fn sample_snapshot() -> MetricsSnapshot {
        let _guard = crate::test_guard();
        crate::set_enabled(true);
        let r = Registry::default();
        r.counter("server.requests").add(41);
        r.gauge("server.connections").set(-2);
        let h = r.histogram("meta.eval_ns");
        h.record_ns(100);
        h.record_ns(90_000);
        r.histogram_labeled("exec.partition_ns", &[("op", "meta_select"), ("part", "0")])
            .record_ns(512);
        r.snapshot()
    }

    #[test]
    fn renders_and_validates() {
        let text = render(&sample_snapshot());
        assert!(text.contains("# TYPE motro_server_requests counter"));
        assert!(text.contains("motro_server_requests 41"));
        assert!(text.contains("motro_server_connections -2"));
        assert!(text.contains("motro_meta_eval_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("motro_meta_eval_ns_count 2"));
        assert!(text
            .contains("motro_exec_partition_ns_bucket{op=\"meta_select\",part=\"0\",le=\"1024\"}"));
        let names = validate(&text).expect("valid exposition");
        assert!(names.contains("motro_server_requests"));
        assert!(names.contains("motro_exec_partition_ns"));
    }

    #[test]
    fn buckets_are_cumulative() {
        let text = render(&sample_snapshot());
        // 100ns lands in bucket le=256; the 90µs observation joins at
        // le=262144; cumulative counts never decrease.
        let mut last = 0u64;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("motro_meta_eval_ns_bucket") {
                let v: u64 = rest.split_whitespace().last().unwrap().parse().unwrap();
                assert!(v >= last, "cumulative: {line}");
                last = v;
            }
        }
        assert_eq!(last, 2);
    }

    #[test]
    fn label_values_are_escaped() {
        let snap = MetricsSnapshot {
            labeled_histograms: vec![LabeledHistogramSnapshot {
                name: "q.lat_ns".to_owned(),
                labels: vec![("stmt".to_owned(), "say \"hi\"\\\nbye".to_owned())],
                hist: HistogramSnapshot {
                    buckets: std::array::from_fn(|i| u64::from(i == 0)),
                    count: 1,
                    sum_ns: 3,
                },
            }],
            ..MetricsSnapshot::default()
        };
        let text = render(&snap);
        assert!(text.contains(r#"stmt="say \"hi\"\\\nbye""#), "{text}");
        validate(&text).expect("escaped labels validate");
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate("motro_x 1").is_err(), "sample without TYPE");
        assert!(
            validate("# TYPE motro_x counter\nmotro_x notanumber").is_err(),
            "non-numeric value"
        );
        assert!(
            validate("# TYPE motro_h histogram\nmotro_h_bucket{le=\"4\"} 1\nmotro_h_count 1")
                .is_err(),
            "histogram without +Inf bucket"
        );
        assert!(
            validate(
                "# TYPE motro_h histogram\nmotro_h_bucket{le=\"4\"} 2\nmotro_h_bucket{le=\"+Inf\"} 1\nmotro_h_sum 1\nmotro_h_count 1"
            )
            .is_err(),
            "decreasing cumulative buckets"
        );
        assert!(
            validate("# TYPE bad.name counter\n").is_err(),
            "invalid metric name"
        );
    }

    #[test]
    fn metric_name_folding() {
        assert_eq!(metric_name("server.cache.hits"), "motro_server_cache_hits");
        assert_eq!(metric_name("a-b c"), "motro_a_b_c");
    }
}
