//! Prometheus text exposition (format 0.0.4) over a metrics snapshot —
//! rendered by hand, zero dependencies, so any standard scraper can
//! consume the registry.
//!
//! Mapping: every metric gets the `motro_` prefix and has `.` (and any
//! other character outside `[a-zA-Z0-9_:]`) folded to `_`. Counters and
//! gauges are single samples; histograms expand to the conventional
//! cumulative `_bucket{le="..."}` series (bounds in nanoseconds, from
//! the power-of-4 layout) plus `_sum` and `_count`. Labeled series
//! (e.g. the per-operator executor timings) carry their labels with
//! values escaped per the exposition rules (`\\`, `\"`, `\n`).
//!
//! [`validate`] is a strict grammar checker for the subset this module
//! emits — the scrape smoke tests and CI run every exposition through
//! it, so a rendering regression fails loudly rather than silently
//! producing text Prometheus would drop.
//!
//! When exemplars are enabled ([`set_exemplars`]) the flat histogram
//! `_bucket` lines additionally carry the OpenMetrics exemplar suffix
//! `# {trace_id="..."} VALUE TIMESTAMP` for the most recent retained
//! trace whose observation landed in that bucket — the join point
//! between a Prometheus latency bucket and a live trace in the trace
//! store. The default exposition (exemplars off) is byte-identical to
//! what this module emitted before exemplars existed.

use crate::metrics::{
    bucket_bound, bucket_index, HistogramSnapshot, MetricsSnapshot, HISTOGRAM_BUCKETS,
};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// One exemplar: the trace whose observation most recently landed in a
/// histogram bucket.
#[derive(Debug, Clone)]
pub struct Exemplar {
    /// Trace id, as lowercase hex.
    pub trace_id: String,
    /// The observed value, in the histogram's unit (nanoseconds).
    pub value_ns: u64,
    /// Wall-clock capture time, milliseconds since the Unix epoch.
    pub unix_ms: u64,
}

static EXEMPLARS_ON: AtomicBool = AtomicBool::new(false);

type ExemplarSlots = BTreeMap<String, Vec<Option<Exemplar>>>;

fn exemplar_store() -> &'static Mutex<ExemplarSlots> {
    static STORE: OnceLock<Mutex<ExemplarSlots>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Enable or disable exemplar recording and rendering (off by
/// default — the exposition stays byte-identical to the pre-exemplar
/// format unless explicitly switched on).
pub fn set_exemplars(on: bool) {
    EXEMPLARS_ON.store(on, Ordering::Relaxed);
}

/// Are exemplars enabled?
pub fn exemplars_enabled() -> bool {
    EXEMPLARS_ON.load(Ordering::Relaxed)
}

/// Record an exemplar for the registry histogram `metric` (pre-folded
/// name, e.g. `server.request_ns`): `trace_id` observed `ns`, landing
/// in the same bucket [`crate::metrics::Histogram::record_ns`] counted
/// it in. No-op while exemplars are disabled.
pub fn record_exemplar(metric: &str, ns: u64, trace_id: &str) {
    if !exemplars_enabled() {
        return;
    }
    let unix_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let mut store = exemplar_store().lock();
    let slots = store
        .entry(metric.to_owned())
        .or_insert_with(|| vec![None; HISTOGRAM_BUCKETS]);
    slots[bucket_index(ns)] = Some(Exemplar {
        trace_id: trace_id.to_owned(),
        value_ns: ns,
        unix_ms,
    });
}

/// Drop all recorded exemplars (tests and registry resets).
pub fn clear_exemplars() {
    exemplar_store().lock().clear();
}

/// Fold a registry name into a valid Prometheus metric name with the
/// `motro_` prefix: characters outside `[a-zA-Z0-9_:]` become `_`.
pub fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("motro_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escape a label value per the exposition format: backslash, double
/// quote, and newline.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

fn render_histogram(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    h: &HistogramSnapshot,
    exemplars: Option<&[Option<Exemplar>]>,
) {
    let mut cumulative = 0u64;
    for (i, n) in h.buckets.iter().enumerate() {
        cumulative += n;
        let le = if i + 1 == HISTOGRAM_BUCKETS {
            "+Inf".to_owned()
        } else {
            bucket_bound(i).to_string()
        };
        let _ = write!(
            out,
            "{name}_bucket{} {cumulative}",
            render_labels(labels, Some(("le", &le)))
        );
        // An exemplar attaches only to the bucket that actually counted
        // its observation, so the exemplar value is always within the
        // bucket's range.
        if *n > 0 {
            if let Some(ex) = exemplars
                .and_then(|slots| slots.get(i))
                .and_then(Option::as_ref)
            {
                let _ = write!(
                    out,
                    " # {{trace_id=\"{}\"}} {} {}.{:03}",
                    escape_label_value(&ex.trace_id),
                    ex.value_ns,
                    ex.unix_ms / 1000,
                    ex.unix_ms % 1000
                );
            }
        }
        out.push('\n');
    }
    let plain = render_labels(labels, None);
    let _ = writeln!(out, "{name}_sum{plain} {}", h.sum_ns);
    let _ = writeln!(out, "{name}_count{plain} {}", h.count);
}

/// Render a snapshot as Prometheus text exposition. Every registered
/// counter, gauge, and histogram (flat and labeled) appears, each base
/// name preceded by exactly one `# TYPE` line.
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snapshot.counters {
        let n = metric_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, v) in &snapshot.gauges {
        let n = metric_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {v}");
    }
    // Group labeled series under their base name so each histogram name
    // gets one TYPE line covering the flat series and every label set.
    type Series<'a> = Vec<(&'a [(String, String)], &'a HistogramSnapshot)>;
    let mut by_name: BTreeMap<String, Series> = BTreeMap::new();
    const NO_LABELS: &[(String, String)] = &[];
    for (name, h) in &snapshot.histograms {
        by_name
            .entry(name.clone())
            .or_default()
            .push((NO_LABELS, h));
    }
    for lh in &snapshot.labeled_histograms {
        by_name
            .entry(lh.name.clone())
            .or_default()
            .push((&lh.labels, &lh.hist));
    }
    let exemplars = if exemplars_enabled() {
        Some(exemplar_store().lock())
    } else {
        None
    };
    for (name, series) in &by_name {
        let n = metric_name(name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        for (labels, h) in series {
            // Exemplars attach to the flat (unlabeled) series only.
            let slots = if labels.is_empty() {
                exemplars
                    .as_ref()
                    .and_then(|s| s.get(name.as_str()))
                    .map(Vec::as_slice)
            } else {
                None
            };
            render_histogram(&mut out, &n, labels, h, slots);
        }
    }
    out
}

/// The content type a `/metrics` HTTP response should carry.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// A parsed sample: metric name, label pairs, value, and whether an
/// exemplar suffix was present.
type Sample = (String, Vec<(String, String)>, f64, bool);

/// A parsed label set plus the remainder of the line after it.
type LabelSet<'a> = (Vec<(String, String)>, &'a str);

/// Walk a `{label="value",...}` set starting at `s` (which must begin
/// with `{`), returning the pairs and the remainder after the closing
/// brace. Escape-aware, so a `}` or ` # ` inside a quoted label value
/// never terminates the set early.
fn parse_label_set<'a>(s: &'a str, line: &str) -> Result<LabelSet<'a>, String> {
    let mut labels = Vec::new();
    let mut rest = s
        .strip_prefix('{')
        .ok_or_else(|| format!("expected label set in: {line}"))?;
    if let Some(after) = rest.strip_prefix('}') {
        return Ok((labels, after));
    }
    loop {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=': {line}"))?;
        let key = &rest[..eq];
        if !valid_label_name(key) {
            return Err(format!("bad label name {key:?} in: {line}"));
        }
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return Err(format!("unquoted label value in: {line}"));
        }
        // Walk the escaped string body.
        let bytes = after.as_bytes();
        let mut i = 1;
        let mut value = String::new();
        loop {
            match bytes.get(i) {
                None => return Err(format!("unterminated label value in: {line}")),
                Some(b'"') => break,
                Some(b'\\') => {
                    match bytes.get(i + 1) {
                        Some(b'\\') => value.push('\\'),
                        Some(b'"') => value.push('"'),
                        Some(b'n') => value.push('\n'),
                        _ => return Err(format!("bad escape in label value: {line}")),
                    }
                    i += 2;
                }
                Some(_) => {
                    // Advance one UTF-8 character.
                    let s = &after[i..];
                    let c = s.chars().next().unwrap();
                    value.push(c);
                    i += c.len_utf8();
                }
            }
        }
        labels.push((key.to_owned(), value));
        rest = &after[i + 1..];
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped;
            if rest.is_empty() || rest.starts_with('}') {
                return Err(format!("trailing comma in label set: {line}"));
            }
        } else if let Some(after_close) = rest.strip_prefix('}') {
            return Ok((labels, after_close));
        } else {
            return Err(format!("junk after label value: {line}"));
        }
    }
}

fn parse_value(v: &str, line: &str) -> Result<f64, String> {
    match v {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        v => v
            .parse::<f64>()
            .map_err(|_| format!("bad sample value {v:?} in: {line}")),
    }
}

/// Check an exemplar suffix (the part after `# `): a label set followed
/// by a value and an optional timestamp.
fn parse_exemplar(ex: &str, line: &str) -> Result<(), String> {
    let (_labels, rest) = parse_label_set(ex, line)?;
    let mut parts = rest.split_whitespace();
    let value = parts
        .next()
        .ok_or_else(|| format!("exemplar without a value: {line}"))?;
    value
        .parse::<f64>()
        .map_err(|_| format!("bad exemplar value {value:?} in: {line}"))?;
    if let Some(ts) = parts.next() {
        ts.parse::<f64>()
            .map_err(|_| format!("bad exemplar timestamp {ts:?} in: {line}"))?;
    }
    if parts.next().is_some() {
        return Err(format!("junk after exemplar: {line}"));
    }
    Ok(())
}

/// Split a sample line into (name, labels, value, has_exemplar),
/// validating label syntax, escapes, and — when present — the
/// OpenMetrics exemplar suffix.
fn parse_sample(line: &str) -> Result<Sample, String> {
    let brace = line.find('{');
    let space = line.find(char::is_whitespace);
    let (head, labels, tail) = match (brace, space) {
        // A labeled sample: the brace comes before any whitespace.
        (Some(b), sp) if sp.is_none_or(|s| b < s) => {
            let (labels, rest) = parse_label_set(&line[b..], line)?;
            (line[..b].to_owned(), labels, rest.trim())
        }
        (_, Some(sp)) => (line[..sp].to_owned(), Vec::new(), line[sp..].trim()),
        (_, None) => return Err(format!("sample without a value: {line}")),
    };
    let (value_str, exemplar) = match tail.split_once(" # ") {
        Some((v, ex)) => (v.trim(), Some(ex.trim())),
        None => (tail, None),
    };
    let value = parse_value(value_str, line)?;
    if let Some(ex) = exemplar {
        parse_exemplar(ex, line)?;
    }
    if !valid_metric_name(&head) {
        return Err(format!("bad metric name {head:?} in: {line}"));
    }
    Ok((head, labels, value, exemplar.is_some()))
}

/// Validate text exposition against the subset of the 0.0.4 grammar
/// this crate emits, returning the set of *base* metric names seen.
///
/// Checks: every sample parses (name, escaped labels, numeric value);
/// every sample's base name was declared by a preceding `# TYPE` line;
/// histogram series have non-decreasing cumulative buckets ending in a
/// `+Inf` bucket that equals the series' `_count`; exemplar suffixes
/// parse (label set + value + optional timestamp) and appear only on
/// histogram `_bucket` or counter samples, per OpenMetrics.
pub fn validate(text: &str) -> Result<std::collections::BTreeSet<String>, String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    // (base name, non-le labels) → (cumulative buckets, saw_inf, count)
    type SeriesKey = (String, Vec<(String, String)>);
    let mut buckets: BTreeMap<SeriesKey, Vec<(f64, f64)>> = BTreeMap::new();
    let mut counts: BTreeMap<SeriesKey, f64> = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().ok_or("TYPE line without a name")?;
            let ty = parts.next().ok_or("TYPE line without a type")?;
            if !valid_metric_name(name) {
                return Err(format!("bad metric name in TYPE line: {line}"));
            }
            if !matches!(
                ty,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("unknown type {ty:?} in: {line}"));
            }
            if types.insert(name.to_owned(), ty.to_owned()).is_some() {
                return Err(format!("duplicate TYPE for {name}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        let (name, labels, value, has_exemplar) = parse_sample(line)?;
        // Resolve the base name: histogram samples append a suffix.
        let base = types
            .get(&name)
            .map(|_| name.clone())
            .or_else(|| {
                for suffix in ["_bucket", "_sum", "_count"] {
                    if let Some(b) = name.strip_suffix(suffix) {
                        if types.get(b).is_some_and(|t| t == "histogram") {
                            return Some(b.to_owned());
                        }
                    }
                }
                None
            })
            .ok_or_else(|| format!("sample {name} has no preceding TYPE line"))?;
        let ty = &types[&base];
        if has_exemplar && !(name.ends_with("_bucket") && ty == "histogram") && ty != "counter" {
            return Err(format!("exemplar on a non-bucket sample: {line}"));
        }
        if ty == "histogram" {
            let rest_labels: Vec<(String, String)> =
                labels.iter().filter(|(k, _)| k != "le").cloned().collect();
            let key = (base.clone(), rest_labels);
            if name.ends_with("_bucket") {
                let le = labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, v)| v.as_str())
                    .ok_or_else(|| format!("bucket without le label: {line}"))?;
                let bound = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse::<f64>()
                        .map_err(|_| format!("bad le value {le:?}: {line}"))?
                };
                buckets.entry(key).or_default().push((bound, value));
            } else if name.ends_with("_count") {
                counts.insert(key, value);
            }
        } else if labels.iter().any(|(k, _)| k == "le") {
            return Err(format!("le label on non-histogram {base}: {line}"));
        }
    }
    for ((base, labels), series) in &buckets {
        let mut prev_bound = f64::NEG_INFINITY;
        let mut prev_cum = 0.0;
        let mut saw_inf = false;
        for (bound, cum) in series {
            if *bound <= prev_bound {
                return Err(format!("bucket bounds not increasing for {base}{labels:?}"));
            }
            if *cum < prev_cum {
                return Err(format!("cumulative buckets decrease for {base}{labels:?}"));
            }
            prev_bound = *bound;
            prev_cum = *cum;
            if bound.is_infinite() {
                saw_inf = true;
            }
        }
        if !saw_inf {
            return Err(format!("histogram {base}{labels:?} lacks a +Inf bucket"));
        }
        match counts.get(&(base.clone(), labels.clone())) {
            Some(count) if *count == prev_cum => {}
            Some(count) => {
                return Err(format!(
                    "histogram {base}{labels:?}: +Inf bucket {prev_cum} != count {count}"
                ))
            }
            None => return Err(format!("histogram {base}{labels:?} lacks a _count sample")),
        }
    }
    Ok(types.keys().cloned().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{LabeledHistogramSnapshot, Registry};

    fn sample_snapshot() -> MetricsSnapshot {
        let _guard = crate::test_guard();
        crate::set_enabled(true);
        let r = Registry::default();
        r.counter("server.requests").add(41);
        r.gauge("server.connections").set(-2);
        let h = r.histogram("meta.eval_ns");
        h.record_ns(100);
        h.record_ns(90_000);
        r.histogram_labeled("exec.partition_ns", &[("op", "meta_select"), ("part", "0")])
            .record_ns(512);
        r.snapshot()
    }

    #[test]
    fn renders_and_validates() {
        let text = render(&sample_snapshot());
        assert!(text.contains("# TYPE motro_server_requests counter"));
        assert!(text.contains("motro_server_requests 41"));
        assert!(text.contains("motro_server_connections -2"));
        assert!(text.contains("motro_meta_eval_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("motro_meta_eval_ns_count 2"));
        assert!(text
            .contains("motro_exec_partition_ns_bucket{op=\"meta_select\",part=\"0\",le=\"1024\"}"));
        let names = validate(&text).expect("valid exposition");
        assert!(names.contains("motro_server_requests"));
        assert!(names.contains("motro_exec_partition_ns"));
    }

    #[test]
    fn buckets_are_cumulative() {
        let text = render(&sample_snapshot());
        // 100ns lands in bucket le=256; the 90µs observation joins at
        // le=262144; cumulative counts never decrease.
        let mut last = 0u64;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("motro_meta_eval_ns_bucket") {
                let v: u64 = rest.split_whitespace().last().unwrap().parse().unwrap();
                assert!(v >= last, "cumulative: {line}");
                last = v;
            }
        }
        assert_eq!(last, 2);
    }

    #[test]
    fn label_values_are_escaped() {
        let snap = MetricsSnapshot {
            labeled_histograms: vec![LabeledHistogramSnapshot {
                name: "q.lat_ns".to_owned(),
                labels: vec![("stmt".to_owned(), "say \"hi\"\\\nbye".to_owned())],
                hist: HistogramSnapshot {
                    buckets: std::array::from_fn(|i| u64::from(i == 0)),
                    count: 1,
                    sum_ns: 3,
                },
            }],
            ..MetricsSnapshot::default()
        };
        let text = render(&snap);
        assert!(text.contains(r#"stmt="say \"hi\"\\\nbye""#), "{text}");
        validate(&text).expect("escaped labels validate");
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate("motro_x 1").is_err(), "sample without TYPE");
        assert!(
            validate("# TYPE motro_x counter\nmotro_x notanumber").is_err(),
            "non-numeric value"
        );
        assert!(
            validate("# TYPE motro_h histogram\nmotro_h_bucket{le=\"4\"} 1\nmotro_h_count 1")
                .is_err(),
            "histogram without +Inf bucket"
        );
        assert!(
            validate(
                "# TYPE motro_h histogram\nmotro_h_bucket{le=\"4\"} 2\nmotro_h_bucket{le=\"+Inf\"} 1\nmotro_h_sum 1\nmotro_h_count 1"
            )
            .is_err(),
            "decreasing cumulative buckets"
        );
        assert!(
            validate("# TYPE bad.name counter\n").is_err(),
            "invalid metric name"
        );
    }

    #[test]
    fn exemplars_render_and_validate() {
        let _guard = crate::test_guard();
        crate::set_enabled(true);
        let r = Registry::default();
        let h = r.histogram("trace.demo_ns");
        h.record_ns(100);
        h.record_ns(90_000);
        set_exemplars(true);
        record_exemplar("trace.demo_ns", 100, "00000000000000000000000000000abc");
        let text = render(&r.snapshot());
        set_exemplars(false);
        clear_exemplars();
        // 100ns lands in le=256 (bucket 3); the exemplar rides that line.
        let line = text
            .lines()
            .find(|l| l.starts_with("motro_trace_demo_ns_bucket{le=\"256\"}"))
            .expect("bucket line");
        assert!(
            line.contains("# {trace_id=\"00000000000000000000000000000abc\"} 100 "),
            "{line}"
        );
        // Buckets the exemplar does not belong to stay bare.
        assert!(!text
            .lines()
            .any(|l| l.contains("le=\"+Inf\"") && l.contains("trace_id")));
        validate(&text).expect("exemplar exposition validates");
    }

    #[test]
    fn exemplars_off_is_byte_identical() {
        let _guard = crate::test_guard();
        crate::set_enabled(true);
        let r = Registry::default();
        r.histogram("trace.off_ns").record_ns(50);
        let before = render(&r.snapshot());
        set_exemplars(true);
        record_exemplar("trace.off_ns", 50, "ff");
        set_exemplars(false);
        let after = render(&r.snapshot());
        clear_exemplars();
        assert_eq!(before, after, "disabled exemplars leave the text unchanged");
    }

    #[test]
    fn validator_checks_exemplar_grammar() {
        let ok = "# TYPE motro_h histogram\n\
                  motro_h_bucket{le=\"4\"} 1 # {trace_id=\"ab\"} 3 1700000000.123\n\
                  motro_h_bucket{le=\"+Inf\"} 1\n\
                  motro_h_sum 3\nmotro_h_count 1\n";
        validate(ok).expect("well-formed exemplar");
        assert!(
            validate("# TYPE motro_c counter\nmotro_c 1 # {trace_id=\"ab\"} 1").is_ok(),
            "counters may carry exemplars"
        );
        assert!(
            validate("# TYPE motro_g gauge\nmotro_g 1 # {trace_id=\"ab\"} 1").is_err(),
            "gauges may not"
        );
        assert!(
            validate(
                "# TYPE motro_h histogram\nmotro_h_sum 1 # {trace_id=\"ab\"} 1\n\
                 motro_h_bucket{le=\"+Inf\"} 1\nmotro_h_count 1"
            )
            .is_err(),
            "histogram _sum may not"
        );
        assert!(
            validate("# TYPE motro_h histogram\nmotro_h_bucket{le=\"+Inf\"} 1 # {trace_id=} 1\nmotro_h_count 1")
                .is_err(),
            "malformed exemplar label set"
        );
        assert!(
            validate("# TYPE motro_h histogram\nmotro_h_bucket{le=\"+Inf\"} 1 # {trace_id=\"ab\"} x\nmotro_h_count 1")
                .is_err(),
            "non-numeric exemplar value"
        );
    }

    #[test]
    fn label_values_containing_hash_still_parse() {
        // An escaped label value may contain " # " and "}" — the walker
        // must not mistake either for the end of the label set.
        let text = "# TYPE motro_q histogram\n\
                    motro_q_bucket{stmt=\"a # {b}\",le=\"+Inf\"} 1\n\
                    motro_q_sum{stmt=\"a # {b}\"} 1\n\
                    motro_q_count{stmt=\"a # {b}\"} 1\n";
        validate(text).expect("hash inside label value");
    }

    #[test]
    fn metric_name_folding() {
        assert_eq!(metric_name("server.cache.hits"), "motro_server_cache_hits");
        assert_eq!(metric_name("a-b c"), "motro_a_b_c");
    }
}
