//! Sliding-window aggregation over the cumulative metrics registry.
//!
//! The atomic registry only ever accumulates: counters and histogram
//! buckets grow monotonically from process start. Operators, though,
//! ask "what is the request rate *now*" and "what was p95 over the last
//! minute". This layer answers that by remembering a baseline snapshot
//! and, every `window` interval, folding the delta since the baseline
//! into a bounded deque of completed [`WindowSnapshot`]s. Rates and
//! recent-percentile views come from merging the retained windows —
//! histogram merges are exact because the power-of-4 buckets are
//! fixed, so bucket-wise sums commute with quantile estimation.
//!
//! Rolling is *lazy*: there is no background thread. Every read path
//! (the `stats` wire command, the `/metrics` listener) calls
//! [`WindowLayer::roll_if_due`] first, which completes a window only
//! when one has actually elapsed. An idle server therefore pays
//! nothing, and the obs-overhead guardrail measures windowing at its
//! steady-state cost: one snapshot + delta per elapsed window, on the
//! reader's thread.

use crate::metrics::{registry, HistogramSnapshot, MetricsSnapshot};
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Window length and retention policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    /// How long one window spans.
    pub window: Duration,
    /// How many completed windows to retain for merged reports.
    pub retention: usize,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig {
            window: Duration::from_secs(10),
            retention: 6,
        }
    }
}

/// One completed window: what moved while it was open.
#[derive(Debug, Clone)]
pub struct WindowSnapshot {
    /// How long the window was actually open (>= the configured length;
    /// lazy rolling can stretch a window when the server sits idle).
    pub duration: Duration,
    /// Counter increments during the window.
    pub counters: BTreeMap<String, u64>,
    /// Histogram observations during the window (flat keys; labeled
    /// series appear under `name{k="v"}`).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

struct Inner {
    config: WindowConfig,
    baseline: MetricsSnapshot,
    baseline_at: Instant,
    windows: VecDeque<WindowSnapshot>,
    /// Monotonic count of completed windows since construction (not
    /// reset by retention or [`WindowLayer::configure`]): lets readers
    /// detect "a new window completed since I last looked" without
    /// comparing snapshots — the insight alert engine keys off it.
    rolls: u64,
}

impl Inner {
    fn roll(&mut self, now: Instant) {
        let current = registry().snapshot();
        let duration = now.duration_since(self.baseline_at);
        let baseline_hists = self.baseline.flat_histograms();
        let mut counters = BTreeMap::new();
        for (name, v) in &current.counters {
            let before = self.baseline.counter(name);
            counters.insert(name.clone(), v.saturating_sub(before));
        }
        let mut histograms = BTreeMap::new();
        for (name, h) in current.flat_histograms() {
            let delta = match baseline_hists.get(&name) {
                Some(before) => h.delta_since(before),
                None => h,
            };
            histograms.insert(name, delta);
        }
        self.windows.push_back(WindowSnapshot {
            duration,
            counters,
            histograms,
        });
        while self.windows.len() > self.config.retention.max(1) {
            self.windows.pop_front();
        }
        self.baseline = current;
        self.baseline_at = now;
        self.rolls += 1;
    }
}

/// The sliding-window layer. One global instance serves the server
/// (see [`global`]); tests construct their own.
pub struct WindowLayer {
    inner: Mutex<Inner>,
}

impl WindowLayer {
    /// A fresh layer: the baseline is the registry as of now, with no
    /// completed windows yet.
    pub fn new(config: WindowConfig) -> Self {
        WindowLayer {
            inner: Mutex::new(Inner {
                config,
                baseline: registry().snapshot(),
                baseline_at: Instant::now(),
                windows: VecDeque::new(),
                rolls: 0,
            }),
        }
    }

    /// Replace the configuration and restart: drops retained windows
    /// and re-baselines at the current registry state.
    pub fn configure(&self, config: WindowConfig) {
        let mut inner = self.inner.lock();
        inner.config = config;
        inner.windows.clear();
        inner.baseline = registry().snapshot();
        inner.baseline_at = Instant::now();
    }

    /// The active configuration.
    pub fn config(&self) -> WindowConfig {
        self.inner.lock().config
    }

    /// Complete a window if (at least) one window length has elapsed
    /// since the baseline. Returns whether a window was completed.
    pub fn roll_if_due(&self) -> bool {
        let mut inner = self.inner.lock();
        let now = Instant::now();
        if now.duration_since(inner.baseline_at) < inner.config.window {
            return false;
        }
        inner.roll(now);
        true
    }

    /// Complete a window immediately regardless of elapsed time
    /// (tests; the duration recorded is whatever actually elapsed).
    pub fn force_roll(&self) {
        let mut inner = self.inner.lock();
        let now = Instant::now();
        inner.roll(now);
    }

    /// The retained completed windows, oldest first.
    pub fn windows(&self) -> Vec<WindowSnapshot> {
        self.inner.lock().windows.iter().cloned().collect()
    }

    /// Monotonic count of windows completed since construction. Never
    /// decreases (retention evicts snapshots, not history), so a reader
    /// that remembers the value it last saw knows exactly how many
    /// windows completed in between.
    pub fn rolls(&self) -> u64 {
        self.inner.lock().rolls
    }

    /// Merge every retained window into one recent-activity report.
    pub fn report(&self) -> WindowReport {
        let inner = self.inner.lock();
        let mut spanned = Duration::ZERO;
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut histograms: BTreeMap<String, HistogramSnapshot> = BTreeMap::new();
        for w in &inner.windows {
            spanned += w.duration;
            for (name, v) in &w.counters {
                *counters.entry(name.clone()).or_insert(0) += v;
            }
            for (name, h) in &w.histograms {
                histograms
                    .entry(name.clone())
                    .and_modify(|acc| acc.merge(h))
                    .or_insert_with(|| h.clone());
            }
        }
        WindowReport {
            window_secs: inner.config.window.as_secs_f64(),
            retention: inner.config.retention,
            completed: inner.windows.len(),
            spanned,
            counters,
            histograms,
        }
    }
}

/// The merged view over every retained window: deltas, rates, and
/// recent-latency percentiles.
#[derive(Debug, Clone)]
pub struct WindowReport {
    /// Configured window length in seconds.
    pub window_secs: f64,
    /// Configured retention (windows).
    pub retention: usize,
    /// Completed windows merged into this report.
    pub completed: usize,
    /// Total wall time the merged windows span.
    pub spanned: Duration,
    /// Summed counter deltas.
    pub counters: BTreeMap<String, u64>,
    /// Merged histogram deltas (flat keys).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl WindowReport {
    /// Per-second rate for a summed counter delta (0 with no windows).
    pub fn rate(&self, name: &str) -> f64 {
        let secs = self.spanned.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.counters.get(name).copied().unwrap_or(0) as f64 / secs
    }

    /// Render as a JSON object string (the `windows` section of the
    /// `stats` reply). Counters appear as `{"delta":n,"per_sec":r}`;
    /// histograms carry count, rate, mean, and p50/p95/p99 derived from
    /// the merged power-of-4 buckets.
    pub fn to_json(&self) -> String {
        let secs = self.spanned.as_secs_f64();
        let rate = |n: u64| {
            if secs > 0.0 {
                format!("{:.3}", n as f64 / secs)
            } else {
                "0.0".to_owned()
            }
        };
        let mut out = String::from("{\"window_secs\":");
        out.push_str(&format!("{:.3}", self.window_secs));
        out.push_str(",\"retention\":");
        out.push_str(&self.retention.to_string());
        out.push_str(",\"completed\":");
        out.push_str(&self.completed.to_string());
        out.push_str(",\"spanned_secs\":");
        out.push_str(&format!("{secs:.3}"));
        out.push_str(",\"counters\":{");
        let mut first = true;
        for (name, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('"');
            out.push_str(&crate::json_escape(name));
            out.push_str("\":{\"delta\":");
            out.push_str(&v.to_string());
            out.push_str(",\"per_sec\":");
            out.push_str(&rate(*v));
            out.push('}');
        }
        out.push_str("},\"histograms\":{");
        let mut first = true;
        for (name, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('"');
            out.push_str(&crate::json_escape(name));
            out.push_str("\":{\"count\":");
            out.push_str(&h.count.to_string());
            out.push_str(",\"per_sec\":");
            out.push_str(&rate(h.count));
            out.push_str(",\"mean_ns\":");
            out.push_str(&h.mean_ns().to_string());
            out.push_str(",\"p50_ns\":");
            out.push_str(&h.quantile_ns(0.50).to_string());
            out.push_str(",\"p95_ns\":");
            out.push_str(&h.quantile_ns(0.95).to_string());
            out.push_str(",\"p99_ns\":");
            out.push_str(&h.quantile_ns(0.99).to_string());
            out.push('}');
        }
        out.push_str("}}");
        out
    }
}

/// The process-global window layer (default configuration until the
/// server applies its `--window-secs` flag via
/// [`WindowLayer::configure`]).
pub fn global() -> &'static WindowLayer {
    static GLOBAL: OnceLock<WindowLayer> = OnceLock::new();
    GLOBAL.get_or_init(|| WindowLayer::new(WindowConfig::default()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_windows_and_merged_report() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        let c = registry().counter("window.test.items");
        let h = registry().histogram("window.test.lat_ns");
        let layer = WindowLayer::new(WindowConfig {
            window: Duration::from_secs(3600), // never due on its own
            retention: 2,
        });
        c.add(5);
        h.record_ns(100);
        h.record_ns(1_000_000);
        layer.force_roll();
        c.add(7);
        h.record_ns(100);
        layer.force_roll();

        let windows = layer.windows();
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].counters.get("window.test.items"), Some(&5));
        assert_eq!(windows[1].counters.get("window.test.items"), Some(&7));
        assert_eq!(windows[0].histograms["window.test.lat_ns"].count, 2);
        assert_eq!(windows[1].histograms["window.test.lat_ns"].count, 1);

        let report = layer.report();
        assert_eq!(report.completed, 2);
        assert_eq!(report.counters.get("window.test.items"), Some(&12));
        let merged = &report.histograms["window.test.lat_ns"];
        assert_eq!(merged.count, 3);
        // Two of three observations land in the 256ns bucket → p50 256.
        assert_eq!(merged.quantile_ns(0.50), 256);
        assert!(merged.quantile_ns(0.99) >= 1_000_000);
        let json = report.to_json();
        assert!(json.contains("\"completed\":2"));
        assert!(json.contains("\"window.test.items\""));
        assert!(json.contains("\"p95_ns\""));
    }

    #[test]
    fn retention_caps_windows() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        let layer = WindowLayer::new(WindowConfig {
            window: Duration::from_secs(3600),
            retention: 3,
        });
        for _ in 0..7 {
            layer.force_roll();
        }
        assert_eq!(layer.windows().len(), 3);
        assert_eq!(layer.report().completed, 3);
    }

    #[test]
    fn roll_if_due_respects_window_length() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        let layer = WindowLayer::new(WindowConfig {
            window: Duration::from_secs(3600),
            retention: 4,
        });
        assert!(!layer.roll_if_due(), "no window has elapsed");
        let layer = WindowLayer::new(WindowConfig {
            window: Duration::ZERO,
            retention: 4,
        });
        assert!(layer.roll_if_due(), "zero-length window is always due");
    }

    #[test]
    fn reconfigure_rebaselines() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        let c = registry().counter("window.test.reconf");
        let layer = WindowLayer::new(WindowConfig {
            window: Duration::from_secs(3600),
            retention: 2,
        });
        c.add(100);
        layer.configure(WindowConfig {
            window: Duration::from_secs(1),
            retention: 5,
        });
        // The 100 increments predate the new baseline.
        layer.force_roll();
        let w = layer.windows();
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].counters.get("window.test.reconf"), Some(&0));
        assert_eq!(layer.config().retention, 5);
    }
}
