//! Request trace contexts: the identity that ties one user request's
//! profile tree, journal record, slow-query entry, and Prometheus
//! exemplar together across the client→server boundary.
//!
//! A [`TraceContext`] is minted at the client (or at the server edge
//! for requests from clients that predate tracing) and carried as an
//! optional field of the wire frame, so old clients and old journal
//! segments remain readable. The head-sampling decision is a *pure
//! function* of the trace id and the configured probability
//! ([`sample_decision`]), in the style of OpenTelemetry's
//! `TraceIdRatioBased` sampler: every process that sees the same trace
//! id reaches the same verdict without coordination, and tests can
//! enumerate ids deterministically.
//!
//! The active context rides in a thread-local ([`set_current`] /
//! [`current`]) so deep layers — the journal writer, the exemplar
//! recorder — can stamp the id without threading a parameter through
//! every call.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// The identity of one end-to-end request trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// 128-bit trace id, rendered as 32 lowercase hex digits on the
    /// wire and in journals/exemplars. Never zero for a minted context.
    pub trace_id: u128,
    /// The span id of the caller's span (0 for a root mint with no
    /// client-side span).
    pub parent_span_id: u64,
    /// The head-sampling verdict for this trace.
    pub sampled: bool,
}

impl TraceContext {
    /// The trace id as 32 lowercase hex digits.
    pub fn trace_id_hex(&self) -> String {
        trace_id_hex(self.trace_id)
    }
}

/// Render a trace id as 32 lowercase hex digits.
pub fn trace_id_hex(id: u128) -> String {
    format!("{id:032x}")
}

/// Parse a trace id from hex (1–32 digits, case-insensitive). Returns
/// `None` for empty, overlong, or non-hex input.
pub fn parse_trace_id(s: &str) -> Option<u128> {
    let s = s.trim();
    if s.is_empty() || s.len() > 32 {
        return None;
    }
    u128::from_str_radix(s, 16).ok()
}

/// One draw of process-local entropy: a fresh `RandomState` (seeded by
/// the OS per construction) hashing the wall clock and a process-wide
/// counter. Not cryptographic — trace ids need uniqueness, not
/// unpredictability — and zero new dependencies.
fn entropy() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let mut h = std::collections::hash_map::RandomState::new().build_hasher();
    h.write_u64(COUNTER.fetch_add(1, Ordering::Relaxed));
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap_or_default();
    h.write_u128(now.as_nanos());
    h.finish()
}

/// Mint a fresh root context: random nonzero trace id, no parent span,
/// sampled per [`sample_decision`] at `probability`.
pub fn mint(probability: f64) -> TraceContext {
    let mut trace_id = ((entropy() as u128) << 64) | entropy() as u128;
    if trace_id == 0 {
        trace_id = 1;
    }
    TraceContext {
        trace_id,
        parent_span_id: 0,
        sampled: sample_decision(trace_id, probability),
    }
}

/// Mint a span id (for a client-side root span whose id becomes the
/// server's `parent_span_id`).
pub fn mint_span_id() -> u64 {
    entropy().max(1)
}

/// The deterministic head-sampling verdict for a trace id at a given
/// probability. Pure: the low 64 bits of the id, shifted down to a
/// 53-bit integer (exact in an `f64`), are compared against the
/// probability as a fraction of 2^53 — so `probability >= 1.0` keeps
/// everything, `<= 0.0` keeps nothing, and every holder of the same id
/// agrees without coordination.
pub fn sample_decision(trace_id: u128, probability: f64) -> bool {
    if probability >= 1.0 {
        return true;
    }
    if probability <= 0.0 {
        return false;
    }
    let unit = ((trace_id as u64) >> 11) as f64 / (1u64 << 53) as f64;
    unit < probability
}

thread_local! {
    static CURRENT: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

/// The context currently bound to this thread, if any.
pub fn current() -> Option<TraceContext> {
    CURRENT.with(|c| c.get())
}

/// Bind `ctx` to this thread for the lifetime of the returned guard;
/// the previous binding (if any) is restored on drop.
pub fn set_current(ctx: TraceContext) -> CurrentGuard {
    let prev = CURRENT.with(|c| c.replace(Some(ctx)));
    CurrentGuard { prev }
}

/// Restores the previously bound context on drop. See [`set_current`].
pub struct CurrentGuard {
    prev: Option<TraceContext>,
}

impl Drop for CurrentGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev.take()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let ctx = mint(1.0);
        let hex = ctx.trace_id_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(parse_trace_id(&hex), Some(ctx.trace_id));
        assert_eq!(parse_trace_id("0000000000000000000000000000002a"), Some(42));
        assert_eq!(parse_trace_id("2A"), Some(42), "short + uppercase ok");
        assert_eq!(parse_trace_id(""), None);
        assert_eq!(parse_trace_id("xyz"), None);
        assert_eq!(parse_trace_id(&"f".repeat(33)), None);
    }

    #[test]
    fn minted_ids_are_distinct_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..256 {
            let ctx = mint(0.5);
            assert_ne!(ctx.trace_id, 0);
            assert!(seen.insert(ctx.trace_id), "trace ids collide");
        }
    }

    #[test]
    fn sampling_is_deterministic_and_edge_exact() {
        for id in [1u128, 42, u128::MAX, 0x1234_5678_9abc_def0] {
            assert!(sample_decision(id, 1.0));
            assert!(!sample_decision(id, 0.0));
            // Pure: same id + probability, same verdict, every time.
            let v = sample_decision(id, 0.25);
            for _ in 0..8 {
                assert_eq!(sample_decision(id, 0.25), v);
            }
        }
    }

    #[test]
    fn sampling_rate_tracks_probability() {
        // The decision uses the low 64 bits; enumerate a deterministic
        // spread of ids and check the empirical keep-rate.
        let kept = (0..10_000u64)
            .map(|i| (i as u128).wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .filter(|&id| sample_decision(id, 0.25))
            .count();
        let rate = kept as f64 / 10_000.0;
        assert!((0.20..=0.30).contains(&rate), "rate {rate} far from 0.25");
    }

    #[test]
    fn thread_local_current_restores_on_drop() {
        assert!(current().is_none());
        let outer = mint(1.0);
        let inner = mint(1.0);
        {
            let _g1 = set_current(outer);
            assert_eq!(current(), Some(outer));
            {
                let _g2 = set_current(inner);
                assert_eq!(current(), Some(inner));
            }
            assert_eq!(current(), Some(outer), "inner guard restores outer");
        }
        assert!(current().is_none(), "outer guard restores empty");
    }
}
