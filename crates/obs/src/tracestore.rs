//! A bounded in-memory store of retained request traces.
//!
//! Head sampling decides *up front* whether a trace is interesting;
//! tail retention decides *after the fact* — a request that turned out
//! slow, errored, fell back to the epoch backstop, or masked an
//! unusually high fraction of cells is force-kept even when the head
//! sampler said no. Retained traces land here: a fixed-capacity ring
//! (oldest evicted first) looked up by trace id, serving the `trace`
//! and `traces` wire commands.
//!
//! Capacities are small (hundreds), so lookups scan the ring — no
//! index to keep coherent under eviction.

use crate::profile::ProfileNode;
use parking_lot::Mutex;
use std::collections::VecDeque;

/// One retained trace: identity, request coordinates, why it was kept,
/// and the finished profile tree.
#[derive(Debug, Clone)]
pub struct StoredTrace {
    /// The 128-bit trace id.
    pub trace_id: u128,
    /// Principal that issued the request.
    pub principal: String,
    /// The request statement (or command summary).
    pub stmt: String,
    /// Retention reasons, e.g. `sampled`, `slow`, `error`,
    /// `epoch_fallback`, `mask_fraction`.
    pub reasons: Vec<String>,
    /// End-to-end duration of the profiled request.
    pub duration_ns: u64,
    /// Wall-clock capture time, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// The profile span tree recorded for the request.
    pub root: ProfileNode,
}

/// A listing row: everything in [`StoredTrace`] except the tree.
#[derive(Debug, Clone)]
pub struct TraceSummary {
    /// The 128-bit trace id.
    pub trace_id: u128,
    /// Principal that issued the request.
    pub principal: String,
    /// The request statement (or command summary).
    pub stmt: String,
    /// Retention reasons.
    pub reasons: Vec<String>,
    /// End-to-end duration of the profiled request.
    pub duration_ns: u64,
    /// Wall-clock capture time, milliseconds since the Unix epoch.
    pub unix_ms: u64,
}

/// Running counters for the store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStoreStats {
    /// Traces ever inserted.
    pub inserted: u64,
    /// Traces evicted to make room.
    pub evicted: u64,
    /// Traces currently held.
    pub entries: usize,
    /// Ring capacity.
    pub capacity: usize,
}

struct Inner {
    ring: VecDeque<StoredTrace>,
    inserted: u64,
    evicted: u64,
}

/// The bounded ring of retained traces. See the module docs.
pub struct TraceStore {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl TraceStore {
    /// A store holding at most `capacity` traces (0 disables retention:
    /// every insert is dropped on the floor).
    pub fn new(capacity: usize) -> TraceStore {
        TraceStore {
            capacity,
            inner: Mutex::new(Inner {
                ring: VecDeque::with_capacity(capacity.min(1024)),
                inserted: 0,
                evicted: 0,
            }),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Insert a trace, evicting the oldest when full. A re-inserted
    /// trace id replaces the previous entry in place.
    pub fn insert(&self, trace: StoredTrace) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        inner.inserted += 1;
        if let Some(slot) = inner.ring.iter_mut().find(|t| t.trace_id == trace.trace_id) {
            *slot = trace;
            return;
        }
        if inner.ring.len() >= self.capacity {
            inner.ring.pop_front();
            inner.evicted += 1;
        }
        inner.ring.push_back(trace);
    }

    /// Fetch a retained trace by id.
    pub fn get(&self, trace_id: u128) -> Option<StoredTrace> {
        self.inner
            .lock()
            .ring
            .iter()
            .find(|t| t.trace_id == trace_id)
            .cloned()
    }

    /// Summaries of retained traces, newest first, at most `limit`
    /// (0 means all).
    pub fn list(&self, limit: usize) -> Vec<TraceSummary> {
        let inner = self.inner.lock();
        let take = if limit == 0 { inner.ring.len() } else { limit };
        inner
            .ring
            .iter()
            .rev()
            .take(take)
            .map(|t| TraceSummary {
                trace_id: t.trace_id,
                principal: t.principal.clone(),
                stmt: t.stmt.clone(),
                reasons: t.reasons.clone(),
                duration_ns: t.duration_ns,
                unix_ms: t.unix_ms,
            })
            .collect()
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> TraceStoreStats {
        let inner = self.inner.lock();
        TraceStoreStats {
            inserted: inner.inserted,
            evicted: inner.evicted,
            entries: inner.ring.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(id: u128) -> StoredTrace {
        StoredTrace {
            trace_id: id,
            principal: "Brown".to_owned(),
            stmt: "retrieve (...)".to_owned(),
            reasons: vec!["sampled".to_owned()],
            duration_ns: 1000 + id as u64,
            unix_ms: 0,
            root: ProfileNode {
                stage: "server.request".to_owned(),
                span_id: 0,
                duration_ns: 1000 + id as u64,
                alloc_bytes: 0,
                allocs: 0,
                fields: Vec::new(),
                children: Vec::new(),
            },
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let store = TraceStore::new(3);
        for id in 1..=5u128 {
            store.insert(trace(id));
        }
        assert!(store.get(1).is_none(), "oldest evicted");
        assert!(store.get(2).is_none());
        for id in 3..=5u128 {
            assert!(store.get(id).is_some(), "trace {id} retained");
        }
        let stats = store.stats();
        assert_eq!(stats.inserted, 5);
        assert_eq!(stats.evicted, 2);
        assert_eq!(stats.entries, 3);
        assert_eq!(stats.capacity, 3);
        let listed = store.list(0);
        assert_eq!(
            listed.iter().map(|t| t.trace_id).collect::<Vec<_>>(),
            vec![5, 4, 3],
            "newest first"
        );
        assert_eq!(store.list(2).len(), 2);
    }

    #[test]
    fn reinsert_replaces_in_place() {
        let store = TraceStore::new(2);
        store.insert(trace(7));
        let mut updated = trace(7);
        updated.reasons.push("slow".to_owned());
        store.insert(updated);
        let got = store.get(7).unwrap();
        assert_eq!(got.reasons, vec!["sampled", "slow"]);
        assert_eq!(store.stats().entries, 1);
        assert_eq!(store.stats().evicted, 0);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let store = TraceStore::new(0);
        store.insert(trace(9));
        assert!(store.get(9).is_none());
        assert_eq!(store.stats().inserted, 0);
    }
}
