//! Fleet-wide authorization analytics: bounded per-(principal, views,
//! relations) rollups of mask outcomes and R2 decision splits, an
//! epoch-tagged policy-drift log, and an alert-rule engine evaluated on
//! window roll.
//!
//! Motro's model makes every delivered, masked, or withheld cell
//! attributable: the mask is a pure function of the user's grants and
//! the canonical plan, and each surviving meta-tuple carries the view
//! provenance that produced it. This module aggregates those
//! attributions across requests so an operator can ask *which views are
//! denying whom*, *where masking concentrates*, and *what the last
//! grant actually changed*:
//!
//! * [`Insight::record`] folds one request's [`Event`] — principal,
//!   granting views, relation footprint, cell deliver/mask/withhold
//!   counts, and the R2 `[clear, retain, modify, discard,
//!   clear_fallback]` split — into a bounded rollup table (hard cap
//!   [`MAX_ROLLUPS`], overflow pooled under [`OTHER`]) and bumps the
//!   `insight.*` registry counters, which the §6d window layer then
//!   windows and `/metrics` exports as `motro_insight_*` series.
//! * [`Insight::record_drift`] appends an [`EpochDelta`] — the (user,
//!   view) visibility pairs a mutation gained or lost, tagged with the
//!   auth epoch it produced — to a bounded ring. The server computes
//!   the delta by diffing `permitted_views` around each mutation.
//! * [`Insight::evaluate_alerts`] runs the configured [`AlertRule`]s
//!   (threshold and window-over-window burn-rate expressions over
//!   window counter deltas) whenever the window layer has completed a
//!   new window, emitting fired [`Alert`]s to the structured log sink
//!   and a bounded ring.
//!
//! Everything is hand-rolled JSON (this crate is dependency-free) and
//! bounded: rollup keys, drift entries, alert history, and denial
//! reasons all have hard caps, so the aggregator can stay always-on.

use crate::window::{WindowLayer, WindowSnapshot};
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::OnceLock;

/// Distinct (principal, views, relations) rollup keys tracked before
/// new combinations pool into the [`OTHER`] bucket.
pub const MAX_ROLLUPS: usize = 512;

/// The pooled bucket label used past a cardinality cap.
pub const OTHER: &str = "(other)";

/// Distinct denial reasons tracked per rollup before pooling.
pub const MAX_REASONS: usize = 8;

/// Epoch-tagged drift entries retained.
pub const MAX_DRIFT: usize = 64;

/// Fired alerts retained in the ring.
pub const MAX_ALERTS: usize = 128;

// ---------------------------------------------------------------------
// Events and rollups
// ---------------------------------------------------------------------

/// One request's authorization outcome, as the server observed it.
#[derive(Debug, Clone, Default)]
pub struct Event {
    /// The requesting principal.
    pub principal: String,
    /// Views whose meta-tuples the mask was built from (sorted,
    /// deduplicated). Empty when the mask was empty or on error.
    pub views: Vec<String>,
    /// Relations the canonical plan referenced.
    pub relations: Vec<String>,
    /// Answered from the mask cache?
    pub cached: bool,
    /// Mask granted the entire answer?
    pub full_access: bool,
    /// Error/denial code when the request failed (`denied`,
    /// `bad_statement`, ...); `None` for a delivered answer.
    pub denied: Option<String>,
    /// Rows delivered to the user.
    pub rows_delivered: u64,
    /// Rows withheld entirely.
    pub rows_withheld: u64,
    /// Cells delivered (non-null cells of delivered rows).
    pub cells_delivered: u64,
    /// Cells masked to null within delivered rows.
    pub cells_masked: u64,
    /// Cells suppressed with their rows (withheld rows × arity).
    pub cells_withheld: u64,
    /// R2 decision split `[clear, retain, modify, discard,
    /// clear_fallback]` for this request's meta-selections (zero on
    /// cache hits replayed without re-evaluation unless the cache
    /// stored the original split).
    pub r2: [u64; 5],
}

/// Cumulative outcome totals for one (principal, views, relations)
/// combination.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Rollup {
    /// Requests folded in.
    pub requests: u64,
    /// Requests that failed (see [`Rollup::denials`] for the reasons).
    pub errors: u64,
    /// Requests answered from the mask cache.
    pub cached: u64,
    /// Requests where the mask granted the entire answer.
    pub full_access: u64,
    /// Rows delivered.
    pub rows_delivered: u64,
    /// Rows withheld.
    pub rows_withheld: u64,
    /// Cells delivered.
    pub cells_delivered: u64,
    /// Cells masked within delivered rows.
    pub cells_masked: u64,
    /// Cells suppressed with withheld rows.
    pub cells_withheld: u64,
    /// Summed R2 splits.
    pub r2: [u64; 5],
    /// Denial reasons → occurrences (bounded by [`MAX_REASONS`]).
    pub denials: BTreeMap<String, u64>,
}

impl Rollup {
    fn absorb(&mut self, ev: &Event) {
        self.requests += 1;
        self.cached += ev.cached as u64;
        self.full_access += ev.full_access as u64;
        self.rows_delivered += ev.rows_delivered;
        self.rows_withheld += ev.rows_withheld;
        self.cells_delivered += ev.cells_delivered;
        self.cells_masked += ev.cells_masked;
        self.cells_withheld += ev.cells_withheld;
        for (acc, d) in self.r2.iter_mut().zip(&ev.r2) {
            *acc += d;
        }
        if let Some(reason) = &ev.denied {
            self.errors += 1;
            if !self.denials.contains_key(reason) && self.denials.len() >= MAX_REASONS {
                *self.denials.entry(OTHER.to_owned()).or_insert(0) += 1;
            } else {
                *self.denials.entry(reason.clone()).or_insert(0) += 1;
            }
        }
    }
}

/// A rollup key: the principal, the granting views (sorted,
/// `+`-joined, `(none)` when the mask was empty), and the plan's
/// relation footprint (`+`-joined).
pub type RollupKey = (String, String, String);

fn joined(parts: &[String], empty: &str) -> String {
    if parts.is_empty() {
        return empty.to_owned();
    }
    let mut sorted: Vec<&str> = parts.iter().map(String::as_str).collect();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.join("+")
}

// ---------------------------------------------------------------------
// Policy drift
// ---------------------------------------------------------------------

/// One (user, view) visibility change a mutation produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriftChange {
    /// The affected user.
    pub user: String,
    /// The view whose visibility changed for that user.
    pub view: String,
    /// `true` if the user gained the view, `false` if they lost it.
    pub gained: bool,
}

/// The visibility delta one auth-epoch bump produced: which (user,
/// view) pairs a grant/revoke/group mutation exposed or hid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochDelta {
    /// The auth epoch *after* the mutation.
    pub epoch: u64,
    /// The mutating statement, as received.
    pub stmt: String,
    /// The (user, view) pairs whose visibility changed.
    pub changes: Vec<DriftChange>,
    /// Wall-clock milliseconds since the Unix epoch when recorded.
    pub unix_ms: u64,
}

impl EpochDelta {
    fn to_json(&self) -> String {
        let mut out = String::from("{\"epoch\":");
        out.push_str(&self.epoch.to_string());
        out.push_str(",\"unix_ms\":");
        out.push_str(&self.unix_ms.to_string());
        out.push_str(",\"stmt\":\"");
        out.push_str(&crate::json_escape(&self.stmt));
        out.push_str("\",\"gained\":[");
        render_pairs(&mut out, &self.changes, true);
        out.push_str("],\"lost\":[");
        render_pairs(&mut out, &self.changes, false);
        out.push_str("]}");
        out
    }

    /// Human-readable "grant/revoke X changed visibility" line.
    pub fn render(&self) -> String {
        let gained: Vec<String> = self
            .changes
            .iter()
            .filter(|c| c.gained)
            .map(|c| format!("({}, {})", c.user, c.view))
            .collect();
        let lost: Vec<String> = self
            .changes
            .iter()
            .filter(|c| !c.gained)
            .map(|c| format!("({}, {})", c.user, c.view))
            .collect();
        let mut out = format!("epoch {}: `{}`", self.epoch, self.stmt);
        if gained.is_empty() && lost.is_empty() {
            out.push_str(" changed no (user, view) visibility");
            return out;
        }
        if !gained.is_empty() {
            out.push_str(&format!(" gained {}", gained.join(", ")));
        }
        if !lost.is_empty() {
            if !gained.is_empty() {
                out.push(';');
            }
            out.push_str(&format!(" lost {}", lost.join(", ")));
        }
        out
    }
}

fn render_pairs(out: &mut String, changes: &[DriftChange], gained: bool) {
    let mut first = true;
    for c in changes.iter().filter(|c| c.gained == gained) {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"user\":\"");
        out.push_str(&crate::json_escape(&c.user));
        out.push_str("\",\"view\":\"");
        out.push_str(&crate::json_escape(&c.view));
        out.push_str("\"}");
    }
}

// ---------------------------------------------------------------------
// Alert rules
// ---------------------------------------------------------------------

/// A comparison operator in an alert rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `<=`
    Le,
}

impl Cmp {
    fn holds(self, lhs: f64, rhs: f64) -> bool {
        match self {
            Cmp::Gt => lhs > rhs,
            Cmp::Ge => lhs >= rhs,
            Cmp::Lt => lhs < rhs,
            Cmp::Le => lhs <= rhs,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            Cmp::Gt => ">",
            Cmp::Ge => ">=",
            Cmp::Lt => "<",
            Cmp::Le => "<=",
        }
    }
}

/// An alert expression evaluated over completed windows.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `delta(counter)` — the counter's increment in the newest window.
    Delta(String),
    /// `rate(counter)` — the increment per second in the newest window.
    Rate(String),
    /// `ratio(a, b)` — `delta(a) / delta(b)` in the newest window
    /// (0 when `b` did not move).
    Ratio(String, String),
    /// `jump(inner)` — window-over-window burn rate: the inner
    /// expression's value in the newest window divided by its value in
    /// the previous one. Skipped (never fires) without two completed
    /// windows or when the previous value is 0.
    Jump(Box<Expr>),
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Delta(c) => write!(f, "delta({c})"),
            Expr::Rate(c) => write!(f, "rate({c})"),
            Expr::Ratio(a, b) => write!(f, "ratio({a}, {b})"),
            Expr::Jump(inner) => write!(f, "jump({inner})"),
        }
    }
}

impl Expr {
    /// Evaluate over one window; `None` only for ill-formed input.
    fn eval(&self, w: &WindowSnapshot) -> f64 {
        match self {
            Expr::Delta(c) => w.counters.get(c).copied().unwrap_or(0) as f64,
            Expr::Rate(c) => {
                let secs = w.duration.as_secs_f64();
                if secs <= 0.0 {
                    0.0
                } else {
                    w.counters.get(c).copied().unwrap_or(0) as f64 / secs
                }
            }
            Expr::Ratio(a, b) => {
                let num = w.counters.get(a).copied().unwrap_or(0) as f64;
                let den = w.counters.get(b).copied().unwrap_or(0) as f64;
                if den <= 0.0 {
                    0.0
                } else {
                    num / den
                }
            }
            Expr::Jump(_) => unreachable!("jump is evaluated across windows"),
        }
    }
}

/// One alert rule: `name: expr cmp value [min m]`.
///
/// Grammar (whitespace-insensitive around tokens):
///
/// ```text
/// rule  := NAME ':' expr CMP NUMBER [ 'min' NUMBER ]
/// expr  := 'delta(' COUNTER ')'
///        | 'rate(' COUNTER ')'
///        | 'ratio(' COUNTER ',' COUNTER ')'
///        | 'jump(' expr ')'            -- inner: delta | rate | ratio
/// CMP   := '>' | '>=' | '<' | '<='
/// ```
///
/// `min m` suppresses the rule unless the *current-window* value of the
/// (inner, for `jump`) expression is at least `m` — the guard that
/// keeps a 1→2 denial "spike" from paging anyone.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// The rule's name, reported with every fired alert.
    pub name: String,
    /// The evaluated expression.
    pub expr: Expr,
    /// The comparison applied to the expression's value.
    pub cmp: Cmp,
    /// The threshold compared against.
    pub value: f64,
    /// Minimum current-window value for the rule to fire.
    pub min: f64,
}

impl fmt::Display for AlertRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} {} {}",
            self.name,
            self.expr,
            self.cmp.as_str(),
            self.value
        )?;
        if self.min > 0.0 {
            write!(f, " min {}", self.min)?;
        }
        Ok(())
    }
}

impl AlertRule {
    /// Parse one rule from the textual grammar.
    pub fn parse(s: &str) -> Result<AlertRule, String> {
        let (name, rest) = s
            .split_once(':')
            .ok_or_else(|| format!("rule `{s}`: missing `name:` prefix"))?;
        let name = name.trim();
        if name.is_empty() {
            return Err(format!("rule `{s}`: empty name"));
        }
        let rest = rest.trim();
        let (expr, rest) = parse_expr(rest)?;
        let rest = rest.trim_start();
        let (cmp, rest) = if let Some(r) = rest.strip_prefix(">=") {
            (Cmp::Ge, r)
        } else if let Some(r) = rest.strip_prefix("<=") {
            (Cmp::Le, r)
        } else if let Some(r) = rest.strip_prefix('>') {
            (Cmp::Gt, r)
        } else if let Some(r) = rest.strip_prefix('<') {
            (Cmp::Lt, r)
        } else {
            return Err(format!("rule `{s}`: expected comparison, found `{rest}`"));
        };
        let rest = rest.trim();
        let (value_str, min_str) = match rest.split_once("min") {
            Some((v, m)) => (v.trim(), Some(m.trim())),
            None => (rest, None),
        };
        let value: f64 = value_str
            .parse()
            .map_err(|_| format!("rule `{s}`: bad threshold `{value_str}`"))?;
        let min: f64 = match min_str {
            Some(m) => m
                .parse()
                .map_err(|_| format!("rule `{s}`: bad min `{m}`"))?,
            None => 0.0,
        };
        Ok(AlertRule {
            name: name.to_owned(),
            expr,
            cmp,
            value,
            min,
        })
    }

    /// The built-in rule set: denial spike, mask-fraction jump, any
    /// epoch fallback, and cache-retention drop.
    pub fn defaults() -> Vec<AlertRule> {
        [
            "denial-spike: jump(delta(insight.errors)) >= 2 min 5",
            "mask-fraction-jump: jump(ratio(insight.cells.suppressed, insight.cells.seen)) \
             >= 1.5 min 0.2",
            "epoch-fallback: delta(server.cache.epoch_fallbacks) > 0",
            "cache-retention-drop: jump(ratio(insight.requests.cached, insight.requests)) <= 0.5",
        ]
        .iter()
        .map(|s| AlertRule::parse(s).expect("default rules parse"))
        .collect()
    }

    /// Evaluate against the newest window (`current`) and, for `jump`,
    /// the one before it. Returns the observed value when fired.
    fn fire_value(
        &self,
        current: &WindowSnapshot,
        previous: Option<&WindowSnapshot>,
    ) -> Option<f64> {
        let (observed, guard) = match &self.expr {
            Expr::Jump(inner) => {
                let prev = previous?;
                let cur = inner.eval(current);
                let before = inner.eval(prev);
                if before <= 0.0 {
                    return None;
                }
                (cur / before, cur)
            }
            expr => {
                let v = expr.eval(current);
                (v, v)
            }
        };
        if guard < self.min {
            return None;
        }
        if self.cmp.holds(observed, self.value) {
            Some(observed)
        } else {
            None
        }
    }
}

fn parse_expr(s: &str) -> Result<(Expr, &str), String> {
    let s = s.trim_start();
    let (head, rest) = match s.find('(') {
        Some(i) => (s[..i].trim(), &s[i + 1..]),
        None => return Err(format!("expression `{s}`: expected `fn(...)`")),
    };
    match head {
        "jump" => {
            let (inner, rest) = parse_expr(rest)?;
            let rest = rest.trim_start();
            let rest = rest
                .strip_prefix(')')
                .ok_or_else(|| format!("jump: missing `)` before `{rest}`"))?;
            if matches!(inner, Expr::Jump(_)) {
                return Err("jump(jump(..)) is not allowed".to_owned());
            }
            Ok((Expr::Jump(Box::new(inner)), rest))
        }
        "delta" | "rate" => {
            let i = rest
                .find(')')
                .ok_or_else(|| format!("{head}: missing `)` in `{rest}`"))?;
            let counter = rest[..i].trim().to_owned();
            if counter.is_empty() {
                return Err(format!("{head}: empty counter name"));
            }
            let expr = if head == "delta" {
                Expr::Delta(counter)
            } else {
                Expr::Rate(counter)
            };
            Ok((expr, &rest[i + 1..]))
        }
        "ratio" => {
            let i = rest
                .find(')')
                .ok_or_else(|| format!("ratio: missing `)` in `{rest}`"))?;
            let inner = &rest[..i];
            let (a, b) = inner
                .split_once(',')
                .ok_or_else(|| format!("ratio: expected two counters in `{inner}`"))?;
            let (a, b) = (a.trim().to_owned(), b.trim().to_owned());
            if a.is_empty() || b.is_empty() {
                return Err("ratio: empty counter name".to_owned());
            }
            Ok((Expr::Ratio(a, b), &rest[i + 1..]))
        }
        other => Err(format!("unknown alert function `{other}`")),
    }
}

/// One fired alert.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// The firing rule's name.
    pub rule: String,
    /// The rule rendered back to its grammar.
    pub expr: String,
    /// The observed value that crossed the threshold.
    pub value: f64,
    /// The threshold.
    pub threshold: f64,
    /// The window-roll ordinal the alert fired on.
    pub roll: u64,
    /// Wall-clock milliseconds since the Unix epoch when fired.
    pub unix_ms: u64,
}

impl Alert {
    fn to_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"expr\":\"{}\",\"value\":{:.4},\"threshold\":{},\"roll\":{},\"unix_ms\":{}}}",
            crate::json_escape(&self.rule),
            crate::json_escape(&self.expr),
            self.value,
            self.threshold,
            self.roll,
            self.unix_ms
        )
    }
}

// ---------------------------------------------------------------------
// The aggregator
// ---------------------------------------------------------------------

#[derive(Default)]
struct AlertState {
    rules: Vec<AlertRule>,
    seen_rolls: u64,
    fired: VecDeque<Alert>,
    total_fired: u64,
}

/// The insight aggregator: rollups + drift log + alert engine. Use the
/// process-wide [`global`] instance; tests construct their own.
pub struct Insight {
    rollups: Mutex<BTreeMap<RollupKey, Rollup>>,
    drift: Mutex<VecDeque<EpochDelta>>,
    alerts: Mutex<AlertState>,
}

impl Default for Insight {
    fn default() -> Self {
        Insight::new()
    }
}

impl Insight {
    /// A fresh aggregator with the default alert rules.
    pub fn new() -> Self {
        Insight {
            rollups: Mutex::new(BTreeMap::new()),
            drift: Mutex::new(VecDeque::new()),
            alerts: Mutex::new(AlertState {
                rules: AlertRule::defaults(),
                ..AlertState::default()
            }),
        }
    }

    /// Fold one request's outcome into the rollups and bump the
    /// `insight.*` registry counters (which the window layer windows
    /// and `/metrics` exports as `motro_insight_*`). No-op while
    /// recording is globally disabled.
    pub fn record(&self, ev: &Event) {
        if !crate::enabled() {
            return;
        }
        crate::counter!("insight.requests").inc();
        if ev.cached {
            crate::counter!("insight.requests.cached").inc();
        }
        if ev.full_access {
            crate::counter!("insight.requests.full_access").inc();
        }
        if ev.denied.is_some() {
            crate::counter!("insight.errors").inc();
        }
        crate::counter!("insight.rows.delivered").add(ev.rows_delivered);
        crate::counter!("insight.rows.withheld").add(ev.rows_withheld);
        crate::counter!("insight.cells.delivered").add(ev.cells_delivered);
        crate::counter!("insight.cells.masked").add(ev.cells_masked);
        crate::counter!("insight.cells.withheld").add(ev.cells_withheld);
        crate::counter!("insight.cells.suppressed").add(ev.cells_masked + ev.cells_withheld);
        crate::counter!("insight.cells.seen")
            .add(ev.cells_delivered + ev.cells_masked + ev.cells_withheld);
        crate::counter!("insight.r2.clear").add(ev.r2[0]);
        crate::counter!("insight.r2.retain").add(ev.r2[1]);
        crate::counter!("insight.r2.modify").add(ev.r2[2]);
        crate::counter!("insight.r2.discard").add(ev.r2[3]);
        crate::counter!("insight.r2.clear_fallback").add(ev.r2[4]);

        let key: RollupKey = (
            ev.principal.clone(),
            joined(&ev.views, "(none)"),
            joined(&ev.relations, "(none)"),
        );
        let mut rollups = self.rollups.lock();
        if !rollups.contains_key(&key) && rollups.len() >= MAX_ROLLUPS {
            let pooled: RollupKey = (OTHER.to_owned(), OTHER.to_owned(), OTHER.to_owned());
            rollups.entry(pooled).or_default().absorb(ev);
            return;
        }
        rollups.entry(key).or_default().absorb(ev);
    }

    /// The rollup table, sorted by key.
    pub fn rollups(&self) -> Vec<(RollupKey, Rollup)> {
        self.rollups
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Number of tracked rollup keys.
    pub fn len(&self) -> usize {
        self.rollups.lock().len()
    }

    /// Is the rollup table empty?
    pub fn is_empty(&self) -> bool {
        self.rollups.lock().is_empty()
    }

    /// Append one epoch's drift delta (bounded ring, newest retained).
    pub fn record_drift(&self, delta: EpochDelta) {
        if !crate::enabled() {
            return;
        }
        crate::counter!("insight.drift.epochs").inc();
        crate::counter!("insight.drift.changes").add(delta.changes.len() as u64);
        let mut drift = self.drift.lock();
        drift.push_back(delta);
        while drift.len() > MAX_DRIFT {
            drift.pop_front();
        }
    }

    /// The retained drift deltas, newest first, at most `limit`
    /// (`0` = all retained).
    pub fn drift(&self, limit: usize) -> Vec<EpochDelta> {
        let drift = self.drift.lock();
        let take = if limit == 0 { drift.len() } else { limit };
        drift.iter().rev().take(take).cloned().collect()
    }

    /// Replace the alert rule set (e.g. from `--alert-rule` flags).
    pub fn set_rules(&self, rules: Vec<AlertRule>) {
        self.alerts.lock().rules = rules;
    }

    /// The active alert rules, rendered back to their grammar.
    pub fn rules(&self) -> Vec<String> {
        self.alerts
            .lock()
            .rules
            .iter()
            .map(|r| r.to_string())
            .collect()
    }

    /// Evaluate the alert rules if `layer` has completed new windows
    /// since the last evaluation. Each newly fired alert lands in the
    /// bounded ring, bumps `insight.alerts.fired`, and is emitted to
    /// the structured log sink at WARN. Returns the alerts fired by
    /// *this* call.
    pub fn evaluate_alerts(&self, layer: &WindowLayer) -> Vec<Alert> {
        let rolls = layer.rolls();
        let mut state = self.alerts.lock();
        if rolls == state.seen_rolls {
            return Vec::new();
        }
        state.seen_rolls = rolls;
        let windows = layer.windows();
        let current = match windows.last() {
            Some(w) => w,
            None => return Vec::new(),
        };
        let previous = windows.len().checked_sub(2).map(|i| &windows[i]);
        let unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let mut fired = Vec::new();
        for rule in &state.rules {
            if let Some(value) = rule.fire_value(current, previous) {
                let alert = Alert {
                    rule: rule.name.clone(),
                    expr: rule.to_string(),
                    value,
                    threshold: rule.value,
                    roll: rolls,
                    unix_ms,
                };
                crate::counter!("insight.alerts.fired").inc();
                crate::log::warn(
                    "alert fired",
                    &[
                        ("rule", rule.name.clone()),
                        ("expr", rule.to_string()),
                        ("value", format!("{value:.4}")),
                        ("roll", rolls.to_string()),
                    ],
                );
                fired.push(alert);
            }
        }
        for a in &fired {
            state.fired.push_back(a.clone());
            state.total_fired += 1;
        }
        while state.fired.len() > MAX_ALERTS {
            state.fired.pop_front();
        }
        fired
    }

    /// Recently fired alerts, newest first, at most `limit` (`0` = all
    /// retained).
    pub fn alerts(&self, limit: usize) -> Vec<Alert> {
        let state = self.alerts.lock();
        let take = if limit == 0 { state.fired.len() } else { limit };
        state.fired.iter().rev().take(take).cloned().collect()
    }

    /// Total alerts ever fired (not capped by the ring).
    pub fn alerts_fired(&self) -> u64 {
        self.alerts.lock().total_fired
    }

    /// Drop all rollups, drift entries, and alert history (tests).
    pub fn reset(&self) {
        self.rollups.lock().clear();
        self.drift.lock().clear();
        let mut state = self.alerts.lock();
        state.fired.clear();
        state.total_fired = 0;
        state.seen_rolls = 0;
    }

    /// Render the rollup table as a JSON array, sorted by key.
    pub fn rollups_json(&self) -> String {
        let rollups = self.rollups.lock();
        let mut out = String::from("[");
        let mut first = true;
        for ((principal, views, relations), r) in rollups.iter() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"principal\":\"");
            out.push_str(&crate::json_escape(principal));
            out.push_str("\",\"views\":\"");
            out.push_str(&crate::json_escape(views));
            out.push_str("\",\"relations\":\"");
            out.push_str(&crate::json_escape(relations));
            out.push_str(&format!(
                "\",\"requests\":{},\"errors\":{},\"cached\":{},\"full_access\":{},\
                 \"rows_delivered\":{},\"rows_withheld\":{},\"cells_delivered\":{},\
                 \"cells_masked\":{},\"cells_withheld\":{},\"r2\":{{\"clear\":{},\
                 \"retain\":{},\"modify\":{},\"discard\":{},\"clear_fallback\":{}}}",
                r.requests,
                r.errors,
                r.cached,
                r.full_access,
                r.rows_delivered,
                r.rows_withheld,
                r.cells_delivered,
                r.cells_masked,
                r.cells_withheld,
                r.r2[0],
                r.r2[1],
                r.r2[2],
                r.r2[3],
                r.r2[4],
            ));
            out.push_str(",\"denials\":{");
            let mut dfirst = true;
            for (reason, n) in &r.denials {
                if !dfirst {
                    out.push(',');
                }
                dfirst = false;
                out.push('"');
                out.push_str(&crate::json_escape(reason));
                out.push_str("\":");
                out.push_str(&n.to_string());
            }
            out.push_str("}}");
        }
        out.push(']');
        out
    }

    /// Render the drift log (newest first) as a JSON array.
    pub fn drift_json(&self, limit: usize) -> String {
        let deltas = self.drift(limit);
        let mut out = String::from("[");
        for (i, d) in deltas.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&d.to_json());
        }
        out.push(']');
        out
    }

    /// Render the fired-alert ring (newest first) plus the active rules
    /// as a JSON object.
    pub fn alerts_json(&self, limit: usize) -> String {
        let alerts = self.alerts(limit);
        let mut out = String::from("{\"fired\":");
        out.push_str(&self.alerts_fired().to_string());
        out.push_str(",\"rules\":[");
        for (i, r) in self.rules().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&crate::json_escape(r));
            out.push('"');
        }
        out.push_str("],\"alerts\":[");
        for (i, a) in alerts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&a.to_json());
        }
        out.push_str("]}");
        out
    }

    /// The full insight state — rollups, drift, alerts — as one JSON
    /// object (the `/debug/insight` body).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"rollups\":");
        out.push_str(&self.rollups_json());
        out.push_str(",\"drift\":");
        out.push_str(&self.drift_json(0));
        out.push_str(",\"alerts\":");
        out.push_str(&self.alerts_json(0));
        out.push('}');
        out
    }
}

/// The process-wide insight aggregator the server records into.
pub fn global() -> &'static Insight {
    static GLOBAL: OnceLock<Insight> = OnceLock::new();
    GLOBAL.get_or_init(Insight::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::{WindowConfig, WindowLayer};
    use std::time::Duration;

    fn ev(principal: &str, views: &[&str], rels: &[&str]) -> Event {
        Event {
            principal: principal.to_owned(),
            views: views.iter().map(|s| s.to_string()).collect(),
            relations: rels.iter().map(|s| s.to_string()).collect(),
            rows_delivered: 2,
            rows_withheld: 1,
            cells_delivered: 3,
            cells_masked: 1,
            cells_withheld: 2,
            r2: [1, 0, 2, 1, 0],
            ..Event::default()
        }
    }

    #[test]
    fn rollups_fold_and_key_canonically() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        let ins = Insight::new();
        ins.record(&ev("Brown", &["PSA", "EST"], &["PROJECT"]));
        // Same combination, views listed in the other order → same key.
        ins.record(&ev("Brown", &["EST", "PSA"], &["PROJECT"]));
        ins.record(&ev("Klein", &[], &["PROJECT", "EMPLOYEE"]));
        assert_eq!(ins.len(), 2);
        let rows = ins.rollups();
        let brown = &rows
            .iter()
            .find(|((p, _, _), _)| p == "Brown")
            .expect("brown rollup")
            .1;
        assert_eq!(brown.requests, 2);
        assert_eq!(brown.cells_masked, 2);
        assert_eq!(brown.r2, [2, 0, 4, 2, 0]);
        let klein = rows.iter().find(|((p, _, _), _)| p == "Klein").unwrap();
        assert_eq!(klein.0 .1, "(none)");
        assert_eq!(klein.0 .2, "EMPLOYEE+PROJECT");
        let json = ins.rollups_json();
        assert!(json.contains("\"views\":\"EST+PSA\""));
        assert!(json.contains("\"clear_fallback\":0"));
    }

    #[test]
    fn rollup_cap_pools_into_other() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        let ins = Insight::new();
        for i in 0..(MAX_ROLLUPS + 10) {
            ins.record(&ev(&format!("user{i}"), &[], &["R"]));
        }
        assert_eq!(ins.len(), MAX_ROLLUPS + 1);
        let rows = ins.rollups();
        let other = rows
            .iter()
            .find(|((p, _, _), _)| p == OTHER)
            .expect("pooled bucket");
        assert_eq!(other.1.requests, 10);
    }

    #[test]
    fn denial_reasons_bounded() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        let ins = Insight::new();
        for i in 0..(MAX_REASONS + 4) {
            let mut e = ev("Brown", &[], &["R"]);
            e.denied = Some(format!("reason{i:02}"));
            ins.record(&e);
        }
        let rows = ins.rollups();
        let r = &rows[0].1;
        assert_eq!(r.errors as usize, MAX_REASONS + 4);
        assert_eq!(r.denials.len(), MAX_REASONS + 1);
        assert_eq!(r.denials.get(OTHER), Some(&4));
    }

    #[test]
    fn drift_ring_caps_and_renders() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        let ins = Insight::new();
        for epoch in 0..(MAX_DRIFT as u64 + 5) {
            ins.record_drift(EpochDelta {
                epoch,
                stmt: "grant PSA to Brown".to_owned(),
                changes: vec![DriftChange {
                    user: "Brown".to_owned(),
                    view: "PSA".to_owned(),
                    gained: true,
                }],
                unix_ms: 1,
            });
        }
        let all = ins.drift(0);
        assert_eq!(all.len(), MAX_DRIFT);
        assert_eq!(all[0].epoch, MAX_DRIFT as u64 + 4, "newest first");
        assert!(all[0].render().contains("gained (Brown, PSA)"));
        assert!(ins
            .drift_json(2)
            .contains("\"gained\":[{\"user\":\"Brown\""));
        assert_eq!(ins.drift(3).len(), 3);
    }

    #[test]
    fn rule_grammar_round_trips() {
        for s in [
            "denial-spike: jump(delta(insight.errors)) >= 2 min 5",
            "epoch-fallback: delta(server.cache.epoch_fallbacks) > 0",
            "frac: jump(ratio(a.b, c.d)) <= 0.5 min 0.25",
            "rate: rate(insight.requests) < 100",
        ] {
            let rule = AlertRule::parse(s).unwrap();
            let rendered = rule.to_string();
            let reparsed = AlertRule::parse(&rendered).unwrap();
            assert_eq!(rule, reparsed, "{s} → {rendered}");
        }
        assert!(AlertRule::parse("no-colon delta(x) > 1").is_err());
        assert!(AlertRule::parse("r: bogus(x) > 1").is_err());
        assert!(AlertRule::parse("r: jump(jump(delta(x))) > 1").is_err());
        assert!(AlertRule::parse("r: delta(x) >").is_err());
        assert_eq!(AlertRule::defaults().len(), 4);
    }

    #[test]
    fn alerts_fire_deterministically_on_forced_rolls() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        let layer = WindowLayer::new(WindowConfig {
            window: Duration::from_secs(3600),
            retention: 4,
        });
        let ins = Insight::new();
        ins.set_rules(vec![
            AlertRule::parse("denial-spike: jump(delta(insight.test.denied)) >= 2 min 5").unwrap(),
            AlertRule::parse("any-fallback: delta(insight.test.fallbacks) > 0").unwrap(),
        ]);
        let denied = crate::metrics::registry().counter("insight.test.denied");
        let fallbacks = crate::metrics::registry().counter("insight.test.fallbacks");

        // Window 1: 2 denials — baseline, nothing to jump from.
        denied.add(2);
        layer.force_roll();
        assert!(ins.evaluate_alerts(&layer).is_empty());
        // Re-evaluating without a new roll is a no-op.
        assert!(ins.evaluate_alerts(&layer).is_empty());

        // Window 2: 10 denials (5x) and one fallback → both rules fire.
        denied.add(10);
        fallbacks.add(1);
        layer.force_roll();
        let fired = ins.evaluate_alerts(&layer);
        assert_eq!(fired.len(), 2, "{fired:?}");
        assert_eq!(fired[0].rule, "denial-spike");
        assert!((fired[0].value - 5.0).abs() < 1e-9);
        assert_eq!(fired[1].rule, "any-fallback");
        assert_eq!(ins.alerts_fired(), 2);
        assert!(ins.alerts_json(0).contains("\"rule\":\"denial-spike\""));

        // Window 3: quiet → nothing fires, history retained.
        layer.force_roll();
        assert!(ins.evaluate_alerts(&layer).is_empty());
        assert_eq!(ins.alerts(0).len(), 2);
        // The min guard: 4 denials after 2 is a 2x jump but below min 5.
        denied.add(4);
        layer.force_roll();
        assert!(ins.evaluate_alerts(&layer).is_empty());
    }

    #[test]
    fn to_json_combines_sections() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        let ins = Insight::new();
        ins.record(&ev("Brown", &["PSA"], &["PROJECT"]));
        let json = ins.to_json();
        assert!(json.starts_with("{\"rollups\":["));
        assert!(json.contains("\"drift\":[]"));
        assert!(json.contains("\"rules\":["));
    }
}
