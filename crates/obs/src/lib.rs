//! # motro-obs
//!
//! Observability for the Motro authorization pipeline: a lightweight
//! structured tracing facade, a lock-cheap metrics registry, and a
//! structured logger — built on `std::sync::atomic` and `parking_lot`
//! only (no external tracing/metrics dependencies, the workspace builds
//! offline).
//!
//! The three pieces:
//!
//! * [`metrics`] — named [`metrics::Counter`]s, [`metrics::Gauge`]s and
//!   fixed-bucket latency [`metrics::Histogram`]s behind a global
//!   registry. Hot-path cost is one relaxed atomic op per update; the
//!   name lookup happens once per call site via the [`counter!`] /
//!   [`histogram!`] / [`gauge!`] macros, which cache the handle in a
//!   local `OnceLock`.
//! * [`trace`] — spans with monotonic timings and key/value fields. A
//!   finished span becomes a [`trace::SpanEvent`], recorded in a global
//!   ring buffer and forwarded to pluggable [`trace::Sink`]s (a JSON
//!   stderr sink for servers, an in-memory sink for tests). Span
//!   durations also feed the histogram of the same name, so every named
//!   span shows up in the metrics snapshot for free.
//! * [`log`] — structured log lines (level, message, fields) rendered
//!   as text or as JSON lines, switchable at runtime
//!   ([`log::set_format`]).
//!
//! On top of these, [`tracectx`] mints and propagates end-to-end
//! request trace identities (wire-carried, deterministically
//! head-sampled), [`profile`] threads trace/span ids through its
//! per-request span trees, [`tracestore`] retains interesting traces in
//! a bounded ring, and [`prom`] can attach OpenMetrics exemplars
//! (`trace_id` → histogram bucket) to the exposition. [`alloc`]
//! optionally counts per-thread allocation bytes (attributed to
//! profile stages), and [`prof`] folds finished profile trees into a
//! continuous collapsed-stack aggregate — flamegraph-servable — with a
//! per-user cost ledger.
//!
//! Everything is gated behind one global switch ([`set_enabled`]):
//! disabled, every update is a single relaxed atomic load and an early
//! return, which is what the `BENCH_obs_overhead` experiment measures
//! against.
//!
//! ```
//! let h = motro_obs::histogram!("demo.work_ns");
//! let t = motro_obs::start();
//! // ... do the work ...
//! h.record_since(t);
//! motro_obs::counter!("demo.items").add(3);
//! let snap = motro_obs::metrics::registry().snapshot();
//! assert!(snap.to_json().contains("demo.items"));
//! ```

#![warn(missing_docs)]

pub mod alloc;
pub mod insight;
pub mod log;
pub mod metrics;
pub mod prof;
pub mod profile;
pub mod prom;
pub mod trace;
pub mod tracectx;
pub mod tracestore;
pub mod window;

pub use alloc::{AllocSnapshot, CountingAlloc};
pub use insight::{Alert, AlertRule, DriftChange, EpochDelta, Insight};
pub use metrics::{Counter, Gauge, Histogram, MetricsSnapshot};
pub use prof::{Aggregator, FlameMetric, Ledger, StageStats, UserCost};
pub use profile::ProfileNode;
pub use trace::{span, MemorySink, Sink, Span, SpanEvent, StderrJsonSink};
pub use tracectx::TraceContext;
pub use tracestore::{StoredTrace, TraceStore, TraceStoreStats, TraceSummary};

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enable or disable all recording (metrics, spans, ring
/// buffer). Disabled, every instrumentation point costs one relaxed
/// atomic load.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Is recording enabled?
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A timestamp for [`Histogram::record_since`] — `None` when recording
/// is disabled, so the disabled path never calls `Instant::now`.
pub fn start() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Serializes tests that toggle or depend on the global enabled flag.
#[cfg(test)]
pub(crate) fn test_guard() -> parking_lot::MutexGuard<'static, ()> {
    static LOCK: std::sync::OnceLock<parking_lot::Mutex<()>> = std::sync::OnceLock::new();
    LOCK.get_or_init(|| parking_lot::Mutex::new(())).lock()
}

/// Escape a string for inclusion in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enable_toggle_gates_start() {
        let _g = crate::test_guard();
        set_enabled(false);
        assert!(start().is_none());
        set_enabled(true);
        assert!(start().is_some());
    }

    #[test]
    fn json_escape_covers_controls() {
        let _g = crate::test_guard();
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
