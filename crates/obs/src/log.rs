//! Structured logging to stderr, with runtime-switchable text / JSON
//! line formats. This replaces ad-hoc `eprintln!` call sites in the
//! server binary; unlike metrics and spans it is NOT gated behind
//! [`crate::enabled`] — operational logs should flow even when
//! profiling instrumentation is off.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::json_escape;

/// Output format for log lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogFormat {
    /// `level message k=v k=v` — human-oriented.
    Text,
    /// One JSON object per line: `{"level":...,"msg":...,...}`.
    Json,
}

static FORMAT: AtomicU8 = AtomicU8::new(0);

/// Set the global log format.
pub fn set_format(f: LogFormat) {
    FORMAT.store(
        match f {
            LogFormat::Text => 0,
            LogFormat::Json => 1,
        },
        Ordering::Relaxed,
    );
}

/// Current global log format.
pub fn format() -> LogFormat {
    match FORMAT.load(Ordering::Relaxed) {
        1 => LogFormat::Json,
        _ => LogFormat::Text,
    }
}

/// Severity of a log line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Normal operational events.
    Info,
    /// Unexpected but tolerated conditions.
    Warn,
    /// Failures.
    Error,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// Render a log line in the given format (exposed for tests).
pub fn render(format: LogFormat, level: Level, msg: &str, fields: &[(&str, String)]) -> String {
    match format {
        LogFormat::Text => {
            let mut out = format!("[{}] {}", level.as_str(), msg);
            for (k, v) in fields {
                out.push(' ');
                out.push_str(k);
                out.push('=');
                out.push_str(v);
            }
            out
        }
        LogFormat::Json => {
            let mut out = String::from("{\"level\":\"");
            out.push_str(level.as_str());
            out.push_str("\",\"msg\":\"");
            out.push_str(&json_escape(msg));
            out.push('"');
            for (k, v) in fields {
                out.push_str(",\"");
                // A field named `level` or `msg` would duplicate a
                // reserved key — ambiguous JSON that many shippers
                // reject. Namespace it instead of colliding.
                if *k == "level" || *k == "msg" {
                    out.push_str("field_");
                }
                out.push_str(&json_escape(k));
                out.push_str("\":\"");
                out.push_str(&json_escape(v));
                out.push('"');
            }
            out.push('}');
            out
        }
    }
}

/// Emit a log line to stderr in the global format.
pub fn log(level: Level, msg: &str, fields: &[(&str, String)]) {
    eprintln!("{}", render(format(), level, msg, fields));
}

/// Emit an info line.
pub fn info(msg: &str, fields: &[(&str, String)]) {
    log(Level::Info, msg, fields);
}

/// Emit a warning line.
pub fn warn(msg: &str, fields: &[(&str, String)]) {
    log(Level::Warn, msg, fields);
}

/// Emit an error line.
pub fn error(msg: &str, fields: &[(&str, String)]) {
    log(Level::Error, msg, fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_format_renders_fields() {
        let line = render(
            LogFormat::Text,
            Level::Info,
            "listening",
            &[("addr", "127.0.0.1:7070".to_string())],
        );
        assert_eq!(line, "[info] listening addr=127.0.0.1:7070");
    }

    #[test]
    fn json_format_escapes() {
        let line = render(
            LogFormat::Json,
            Level::Error,
            "bad \"frame\"",
            &[("peer", "x".to_string())],
        );
        assert_eq!(
            line,
            "{\"level\":\"error\",\"msg\":\"bad \\\"frame\\\"\",\"peer\":\"x\"}"
        );
    }

    #[test]
    fn format_switch_round_trips() {
        set_format(LogFormat::Json);
        assert_eq!(format(), LogFormat::Json);
        set_format(LogFormat::Text);
        assert_eq!(format(), LogFormat::Text);
    }

    #[test]
    fn reserved_field_keys_do_not_collide() {
        let line = render(
            LogFormat::Json,
            Level::Info,
            "m",
            &[("msg", "shadow".to_owned()), ("level", "9".to_owned())],
        );
        let v: serde_json::Value = line.parse().unwrap();
        assert_eq!(v.get("msg").and_then(serde_json::Value::as_str), Some("m"));
        assert_eq!(
            v.get("field_msg").and_then(serde_json::Value::as_str),
            Some("shadow")
        );
        assert_eq!(
            v.get("field_level").and_then(serde_json::Value::as_str),
            Some("9")
        );
    }

    /// Deterministic splitmix64 generator (no external deps; runs under
    /// the offline stub toolchain, unlike proptest).
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn nasty_string(state: &mut u64, len: usize) -> String {
        const ALPHABET: &[char] = &[
            '"', '\\', '\n', '\r', '\t', '\u{1}', '\u{1f}', 'a', 'Z', '0', ' ', '{', '}', ':', ',',
            'é', '日', '\u{7f}',
        ];
        (0..len)
            .map(|_| ALPHABET[(splitmix64(state) as usize) % ALPHABET.len()])
            .collect()
    }

    /// Fuzz-style round trip: any message/field content — quotes,
    /// backslashes, newlines, control characters — must render as one
    /// parseable JSON line that preserves the values exactly.
    #[test]
    fn json_lines_round_trip_arbitrary_content() {
        let mut state = 0x00C0_FFEE_u64;
        for case in 0..200 {
            let msg = nasty_string(&mut state, (case % 23) + 1);
            let fields: Vec<(&str, String)> = vec![
                ("peer", nasty_string(&mut state, (case % 17) + 1)),
                ("stmt", nasty_string(&mut state, (case % 31) + 1)),
            ];
            let line = render(LogFormat::Json, Level::Warn, &msg, &fields);
            assert!(
                !line.contains('\n'),
                "one line per record, case {case}: {line:?}"
            );
            let v: serde_json::Value = line
                .parse()
                .unwrap_or_else(|e| panic!("case {case} unparseable ({e}): {line:?}"));
            assert_eq!(
                v.get("msg").and_then(serde_json::Value::as_str),
                Some(msg.as_str()),
                "case {case}"
            );
            for (k, want) in &fields {
                assert_eq!(
                    v.get(k).and_then(serde_json::Value::as_str),
                    Some(want.as_str()),
                    "case {case} field {k}"
                );
            }
        }
    }
}
