//! Structured tracing: spans with monotonic timings and key/value
//! fields, a bounded ring-buffer recorder, and pluggable sinks.
//!
//! A [`Span`] is started with [`span`], annotated with
//! [`Span::field`], and finished either explicitly ([`Span::finish`])
//! or on drop. Finishing produces a [`SpanEvent`] that is (a) appended
//! to a global ring buffer (for post-hoc inspection), (b) forwarded to
//! every installed [`Sink`], and (c) recorded into the histogram of
//! the same name, so span timings appear in the metrics snapshot.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::json_escape;

/// A finished span: name, wall duration, and key/value fields.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Span name (also the histogram it was recorded into).
    pub name: &'static str,
    /// Elapsed wall time between start and finish.
    pub duration: Duration,
    /// Key/value annotations added via [`Span::field`].
    pub fields: Vec<(&'static str, String)>,
}

impl SpanEvent {
    /// Render as a single JSON object line.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"span\":\"");
        out.push_str(&json_escape(self.name));
        out.push_str("\",\"duration_ns\":");
        out.push_str(&(self.duration.as_nanos() as u64).to_string());
        for (k, v) in &self.fields {
            out.push_str(",\"");
            out.push_str(&json_escape(k));
            out.push_str("\":\"");
            out.push_str(&json_escape(v));
            out.push('"');
        }
        out.push('}');
        out
    }
}

/// Receives finished spans. Implementations must be cheap or buffered:
/// they run on the instrumented thread.
pub trait Sink: Send + Sync {
    /// Called once per finished span while recording is enabled.
    fn record(&self, event: &SpanEvent);
}

/// A sink that writes each span as a JSON line to stderr.
#[derive(Debug, Default)]
pub struct StderrJsonSink;

impl Sink for StderrJsonSink {
    fn record(&self, event: &SpanEvent) {
        eprintln!("{}", event.to_json());
    }
}

/// An in-memory sink for tests: collects every span it sees.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<SpanEvent>>,
}

impl MemorySink {
    /// Create an empty sink (wrap in `Arc` to install and inspect).
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Copy out everything recorded so far.
    pub fn events(&self) -> Vec<SpanEvent> {
        self.events.lock().clone()
    }

    /// Names of recorded spans, in order.
    pub fn names(&self) -> Vec<&'static str> {
        self.events.lock().iter().map(|e| e.name).collect()
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &SpanEvent) {
        self.events.lock().push(event.clone());
    }
}

/// Default capacity of the global span ring buffer.
pub const RING_CAPACITY: usize = 1024;

struct RecorderState {
    ring: VecDeque<SpanEvent>,
    capacity: usize,
    sinks: Vec<Arc<dyn Sink>>,
}

fn with_state<R>(f: impl FnOnce(&mut RecorderState) -> R) -> R {
    static RECORDER: std::sync::OnceLock<Mutex<RecorderState>> = std::sync::OnceLock::new();
    let state = RECORDER.get_or_init(|| {
        Mutex::new(RecorderState {
            ring: VecDeque::with_capacity(RING_CAPACITY),
            capacity: RING_CAPACITY,
            sinks: Vec::new(),
        })
    });
    f(&mut state.lock())
}

/// Install a sink; every subsequently finished span is forwarded to it.
pub fn add_sink(sink: Arc<dyn Sink>) {
    with_state(|s| s.sinks.push(sink));
}

/// Remove all installed sinks (tests).
pub fn clear_sinks() {
    with_state(|s| s.sinks.clear());
}

/// Copy out the ring buffer of recent spans (oldest first).
pub fn recent_spans() -> Vec<SpanEvent> {
    with_state(|s| s.ring.iter().cloned().collect())
}

/// Empty the ring buffer.
pub fn clear_spans() {
    with_state(|s| s.ring.clear());
}

fn publish(event: SpanEvent) {
    let mut dropped = false;
    let sinks: Vec<Arc<dyn Sink>> = with_state(|s| {
        if s.ring.len() >= s.capacity {
            s.ring.pop_front();
            dropped = true;
        }
        s.ring.push_back(event.clone());
        s.sinks.clone()
    });
    if dropped {
        // An unconsumed span was overwritten: surface the loss instead
        // of silently forgetting it (`trace.dropped` in `stats`).
        crate::counter!("trace.dropped").inc();
    }
    for sink in sinks {
        sink.record(&event);
    }
}

/// A live span. Finishes (and records) on drop unless recording was
/// disabled when it started.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
    fields: Vec<(&'static str, String)>,
}

/// Start a span named `name`. While recording is disabled this is a
/// no-op handle (one relaxed atomic load).
pub fn span(name: &'static str) -> Span {
    Span {
        name,
        start: crate::start(),
        fields: Vec::new(),
    }
}

impl Span {
    /// Attach a key/value field (no-op on a disabled span).
    pub fn field(&mut self, key: &'static str, value: impl ToString) -> &mut Self {
        if self.start.is_some() {
            self.fields.push((key, value.to_string()));
        }
        self
    }

    /// Is this span actually recording?
    pub fn is_recording(&self) -> bool {
        self.start.is_some()
    }

    /// Finish now and return the elapsed duration (None if disabled).
    pub fn finish(mut self) -> Option<Duration> {
        self.finish_inner()
    }

    fn finish_inner(&mut self) -> Option<Duration> {
        let start = self.start.take()?;
        let duration = start.elapsed();
        crate::metrics::registry()
            .histogram(self.name)
            .record_ns(duration.as_nanos() as u64);
        publish(SpanEvent {
            name: self.name,
            duration,
            fields: std::mem::take(&mut self.fields),
        });
        Some(duration)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_to_ring_sink_and_histogram() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        clear_sinks();
        clear_spans();
        let sink = MemorySink::new();
        add_sink(sink.clone());

        let before = crate::metrics::registry().histogram("test.span_ns").count();
        let mut s = span("test.span_ns");
        s.field("user", "brown");
        drop(s);

        let events = sink.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "test.span_ns");
        assert_eq!(events[0].fields, vec![("user", "brown".to_string())]);
        assert!(recent_spans().iter().any(|e| e.name == "test.span_ns"));
        assert_eq!(
            crate::metrics::registry().histogram("test.span_ns").count(),
            before + 1
        );
        clear_sinks();
    }

    #[test]
    fn disabled_span_is_silent() {
        let _g = crate::test_guard();
        clear_sinks();
        clear_spans();
        let sink = MemorySink::new();
        add_sink(sink.clone());
        crate::set_enabled(false);
        let mut s = span("test.silent_ns");
        s.field("k", "v");
        assert!(!s.is_recording());
        assert_eq!(s.finish(), None);
        crate::set_enabled(true);
        assert!(sink.events().is_empty());
        clear_sinks();
    }

    #[test]
    fn ring_buffer_caps_and_counts_drops() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        clear_sinks();
        clear_spans();
        let before = crate::metrics::registry().counter("trace.dropped").get();
        for _ in 0..RING_CAPACITY + 10 {
            span("test.ring_ns").finish();
        }
        assert_eq!(recent_spans().len(), RING_CAPACITY);
        let dropped = crate::metrics::registry().counter("trace.dropped").get() - before;
        assert_eq!(dropped, 10, "each overwrite counts once");
    }

    #[test]
    fn span_event_json_escapes() {
        let _g = crate::test_guard();
        let e = SpanEvent {
            name: "n",
            duration: Duration::from_nanos(5),
            fields: vec![("q", "say \"hi\"".to_string())],
        };
        assert_eq!(
            e.to_json(),
            "{\"span\":\"n\",\"duration_ns\":5,\"q\":\"say \\\"hi\\\"\"}"
        );
    }
}
