//! Per-request profile trees: an explicitly requested, thread-local
//! recording of one query's pipeline stages.
//!
//! Unlike spans (always-on sampling into a shared ring) a profile is
//! *scoped*: the server begins a session on the worker thread that
//! evaluates a request, the instrumented layers push [`stage`] guards
//! (parse → compile → plan → the meta-algebra operators → mask apply)
//! and [`annotate`] tuple counts, and the finished tree is returned to
//! whoever asked — the `profile` wire command, or the slow-query log.
//!
//! When no session is active every hook is one thread-local check and
//! an early return, independent of the global [`crate::enabled`] flag:
//! profiles answer "why was *this* request slow", which must work even
//! when ambient metrics are switched off. Worker threads spawned by the
//! partitioned executor do not inherit the session; they hand their
//! timings back to the coordinating thread, which attaches them via
//! [`attach`].

use crate::tracectx::TraceContext;
use std::cell::RefCell;
use std::time::Instant;

/// One node of a finished profile tree.
#[derive(Debug, Clone)]
pub struct ProfileNode {
    /// Stage name (e.g. `parse`, `meta.select`, `exec.partition`).
    pub stage: String,
    /// Span id within the request's trace (0 when the session was not
    /// trace-bound; see [`begin_traced`]).
    pub span_id: u64,
    /// Wall time spent in the stage, including children.
    pub duration_ns: u64,
    /// Allocation bytes attributed to the stage (including children) —
    /// nonzero only when a [`crate::alloc::CountingAlloc`] is installed
    /// and counting is on.
    pub alloc_bytes: u64,
    /// Allocation count attributed to the stage (including children).
    pub allocs: u64,
    /// Key/value annotations (tuple counts, operator names, ...).
    pub fields: Vec<(String, String)>,
    /// Nested stages, in execution order.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    fn new(stage: &str) -> ProfileNode {
        ProfileNode {
            stage: stage.to_owned(),
            span_id: 0,
            duration_ns: 0,
            alloc_bytes: 0,
            allocs: 0,
            fields: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Render as a JSON object string (hand-rolled; stable field
    /// order: stage, span_id (traced trees only), duration_ns, fields,
    /// children).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"stage\":\"");
        out.push_str(&crate::json_escape(&self.stage));
        if self.span_id != 0 {
            out.push_str("\",\"span_id\":\"");
            out.push_str(&format!("{:016x}", self.span_id));
        }
        out.push_str("\",\"duration_ns\":");
        out.push_str(&self.duration_ns.to_string());
        // Allocation attribution only appears when something was
        // counted, so uncounted trees render byte-identically to the
        // pre-accounting format.
        if self.alloc_bytes != 0 || self.allocs != 0 {
            out.push_str(&format!(
                ",\"alloc_bytes\":{},\"allocs\":{}",
                self.alloc_bytes, self.allocs
            ));
        }
        out.push_str(",\"fields\":{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&crate::json_escape(k));
            out.push_str("\":\"");
            out.push_str(&crate::json_escape(v));
            out.push('"');
        }
        out.push_str("},\"children\":[");
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&c.to_json());
        }
        out.push_str("]}");
        out
    }

    /// Render as an indented text tree (for the REPL and logs).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&self.stage);
        out.push_str(&format!(" {}ns", self.duration_ns));
        if self.alloc_bytes != 0 || self.allocs != 0 {
            out.push_str(&format!(" alloc={}B/{}", self.alloc_bytes, self.allocs));
        }
        if self.span_id != 0 {
            out.push_str(&format!(" span={:016x}", self.span_id));
        }
        for (k, v) in &self.fields {
            out.push_str(&format!(" {k}={v}"));
        }
        out.push('\n');
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }

    /// Depth-first search for the first node with this stage name.
    pub fn find(&self, stage: &str) -> Option<&ProfileNode> {
        if self.stage == stage {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(stage))
    }
}

struct Frame {
    node: ProfileNode,
    started: Instant,
    /// The thread's allocation counters when the frame opened; the
    /// delta at close is the stage's attributed allocation cost.
    alloc_at: crate::alloc::AllocSnapshot,
}

impl Frame {
    fn open(node: ProfileNode) -> Frame {
        Frame {
            node,
            started: Instant::now(),
            alloc_at: crate::alloc::snapshot(),
        }
    }

    /// Close the frame: stamp the node with its wall time and
    /// allocation delta.
    fn close(self) -> ProfileNode {
        let mut node = self.node;
        node.duration_ns = self.started.elapsed().as_nanos() as u64;
        let delta = crate::alloc::snapshot().delta_since(self.alloc_at);
        node.alloc_bytes = delta.bytes;
        node.allocs = delta.count;
        node
    }
}

struct Collector {
    /// `stack[0]` is the root frame; deeper frames are open stages.
    stack: Vec<Frame>,
    /// Set when the session is trace-bound: stages get span ids and the
    /// root is annotated with the trace identity.
    trace: Option<TraceContext>,
    /// Next span id to hand out (sequential within the request — ids
    /// only need to be unique inside one trace tree).
    next_span_id: u64,
}

impl Collector {
    /// The next span id, or 0 when the session is not trace-bound.
    fn claim_span_id(&mut self) -> u64 {
        if self.trace.is_none() {
            return 0;
        }
        let id = self.next_span_id;
        self.next_span_id += 1;
        id
    }
}

thread_local! {
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

/// Is a profile session active on this thread?
pub fn active() -> bool {
    COLLECTOR.with(|c| c.borrow().is_some())
}

/// A profile session bound to the current thread. Obtain via [`begin`];
/// consume with [`ProfileSession::finish`]. Dropping without finishing
/// discards the recording.
pub struct ProfileSession {
    /// False when a session was already active at [`begin`] — this
    /// handle is then a no-op and `finish` returns `None`.
    owner: bool,
}

/// Begin a profile session rooted at `label` on this thread. If one is
/// already active the call returns a passive handle (the outer session
/// keeps recording; nested stages attach to it).
pub fn begin(label: &str) -> ProfileSession {
    begin_traced(label, None)
}

/// Begin a profile session bound to a trace context: every stage
/// (including the root) is assigned a span id sequential within the
/// request, starting above `ctx.parent_span_id`, and the root node is
/// annotated with `trace_id` / `parent_span_id` so the identity
/// survives in every rendering of the tree. With `ctx == None` this is
/// exactly [`begin`].
pub fn begin_traced(label: &str, ctx: Option<TraceContext>) -> ProfileSession {
    COLLECTOR.with(|c| {
        let mut slot = c.borrow_mut();
        if slot.is_some() {
            return ProfileSession { owner: false };
        }
        let mut collector = Collector {
            stack: Vec::with_capacity(8),
            trace: ctx,
            next_span_id: ctx.map_or(0, |t| t.parent_span_id.wrapping_add(1).max(1)),
        };
        let mut root = ProfileNode::new(label);
        root.span_id = collector.claim_span_id();
        if let Some(t) = ctx {
            root.fields.push(("trace_id".to_owned(), t.trace_id_hex()));
            if t.parent_span_id != 0 {
                root.fields.push((
                    "parent_span_id".to_owned(),
                    format!("{:016x}", t.parent_span_id),
                ));
            }
        }
        collector.stack.push(Frame::open(root));
        *slot = Some(collector);
        ProfileSession { owner: true }
    })
}

/// The trace context bound to this thread's active session, if any.
pub fn session_trace() -> Option<TraceContext> {
    COLLECTOR.with(|c| c.borrow().as_ref().and_then(|col| col.trace))
}

impl ProfileSession {
    /// End the session and return the finished tree (with any stages
    /// left open closed at their current elapsed time). `None` for a
    /// passive handle.
    pub fn finish(self) -> Option<ProfileNode> {
        if !self.owner {
            return None;
        }
        COLLECTOR.with(|c| {
            let collector = c.borrow_mut().take()?;
            let mut finished: Option<ProfileNode> = None;
            for frame in collector.stack.into_iter().rev() {
                let mut node = frame.close();
                if let Some(child) = finished.take() {
                    node.children.push(child);
                }
                finished = Some(node);
            }
            finished
        })
    }
}

impl Drop for ProfileSession {
    fn drop(&mut self) {
        if self.owner {
            COLLECTOR.with(|c| {
                c.borrow_mut().take();
            });
        }
    }
}

/// A stage guard: pushes a child stage while a session is active; on
/// drop the stage closes with its measured duration and attaches to the
/// parent. Without a session this is a no-op handle.
pub struct StageGuard {
    recording: bool,
}

/// Open a stage named `name`.
pub fn stage(name: &str) -> StageGuard {
    let recording = COLLECTOR.with(|c| {
        let mut slot = c.borrow_mut();
        match slot.as_mut() {
            Some(collector) => {
                let mut node = ProfileNode::new(name);
                node.span_id = collector.claim_span_id();
                collector.stack.push(Frame::open(node));
                true
            }
            None => false,
        }
    });
    StageGuard { recording }
}

impl Drop for StageGuard {
    fn drop(&mut self) {
        if !self.recording {
            return;
        }
        COLLECTOR.with(|c| {
            let mut slot = c.borrow_mut();
            if let Some(collector) = slot.as_mut() {
                // The root frame never pops here: a guard only closes a
                // frame it pushed (stack depth >= 2 while any guard is
                // live, because the session owns stack[0]).
                if collector.stack.len() >= 2 {
                    let frame = collector.stack.pop().expect("frame present");
                    let node = frame.close();
                    collector
                        .stack
                        .last_mut()
                        .expect("parent frame")
                        .node
                        .children
                        .push(node);
                }
            }
        });
    }
}

/// Annotate the innermost open stage (or the root) with a key/value.
/// No-op without a session.
pub fn annotate(key: &str, value: impl ToString) {
    COLLECTOR.with(|c| {
        let mut slot = c.borrow_mut();
        if let Some(collector) = slot.as_mut() {
            if let Some(frame) = collector.stack.last_mut() {
                frame.node.fields.push((key.to_owned(), value.to_string()));
            }
        }
    });
}

/// Attach an externally timed, already-finished child to the innermost
/// open stage — how the partitioned executor's worker timings (measured
/// on other threads) join the coordinator's profile. No-op without a
/// session.
pub fn attach(stage: &str, duration_ns: u64, fields: &[(&str, String)]) {
    COLLECTOR.with(|c| {
        let mut slot = c.borrow_mut();
        if let Some(collector) = slot.as_mut() {
            let span_id = collector.claim_span_id();
            if let Some(frame) = collector.stack.last_mut() {
                frame.node.children.push(ProfileNode {
                    stage: stage.to_owned(),
                    span_id,
                    duration_ns,
                    alloc_bytes: 0,
                    allocs: 0,
                    fields: fields
                        .iter()
                        .map(|(k, v)| (k.to_string(), v.clone()))
                        .collect(),
                    children: Vec::new(),
                });
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_nested_tree() {
        assert!(!active());
        let session = begin("request");
        assert!(active());
        {
            let _parse = stage("parse");
        }
        {
            let _outer = stage("mask.compute");
            annotate("rows", 42);
            {
                let _inner = stage("meta.select");
            }
            attach("exec.partition", 777, &[("part", "0".to_string())]);
        }
        let tree = session.finish().expect("owner session yields a tree");
        assert!(!active());
        assert_eq!(tree.stage, "request");
        assert_eq!(tree.children.len(), 2);
        assert_eq!(tree.children[0].stage, "parse");
        let mask = &tree.children[1];
        assert_eq!(mask.stage, "mask.compute");
        assert_eq!(mask.fields, vec![("rows".to_owned(), "42".to_owned())]);
        assert_eq!(mask.children[0].stage, "meta.select");
        assert_eq!(mask.children[1].stage, "exec.partition");
        assert_eq!(mask.children[1].duration_ns, 777);
        assert!(tree.find("meta.select").is_some());
        let json = tree.to_json();
        assert!(json.contains("\"stage\":\"request\""));
        assert!(json.contains("\"rows\":\"42\""));
        let text = tree.render_text();
        assert!(text.contains("  mask.compute"));
        assert!(text.contains("    meta.select"));
    }

    #[test]
    fn traced_session_assigns_span_ids() {
        let ctx = TraceContext {
            trace_id: 0xabc,
            parent_span_id: 5,
            sampled: true,
        };
        let session = begin_traced("request", Some(ctx));
        assert_eq!(session_trace(), Some(ctx));
        {
            let _p = stage("parse");
        }
        {
            let _c = stage("compile");
            attach("exec.partition", 9, &[]);
        }
        let tree = session.finish().unwrap();
        assert!(session_trace().is_none());
        assert_eq!(tree.span_id, 6, "root span follows the parent");
        assert!(tree
            .fields
            .iter()
            .any(|(k, v)| k == "trace_id" && v == &crate::tracectx::trace_id_hex(0xabc)));
        assert!(tree
            .fields
            .iter()
            .any(|(k, v)| k == "parent_span_id" && v == "0000000000000005"));
        assert_eq!(tree.children[0].span_id, 7);
        assert_eq!(tree.children[1].span_id, 8);
        assert_eq!(tree.children[1].children[0].span_id, 9, "attach gets one");
        let json = tree.to_json();
        assert!(json.contains("\"span_id\":\"0000000000000006\""), "{json}");
        assert!(tree.render_text().contains("span=0000000000000007"));
    }

    #[test]
    fn untraced_session_has_zero_span_ids() {
        let session = begin("request");
        assert!(session_trace().is_none());
        {
            let _p = stage("parse");
        }
        let tree = session.finish().unwrap();
        assert_eq!(tree.span_id, 0);
        assert_eq!(tree.children[0].span_id, 0);
        assert!(
            !tree.to_json().contains("span_id"),
            "untraced json unchanged"
        );
    }

    #[test]
    fn hooks_are_noops_without_a_session() {
        assert!(!active());
        let _s = stage("ignored");
        annotate("k", "v");
        attach("x", 1, &[]);
        assert!(!active());
    }

    #[test]
    fn nested_begin_is_passive() {
        let outer = begin("outer");
        let inner = begin("inner");
        assert!(inner.finish().is_none(), "nested session is passive");
        assert!(active(), "outer survives the nested finish");
        {
            let _s = stage("work");
        }
        let tree = outer.finish().unwrap();
        assert_eq!(tree.stage, "outer");
        assert_eq!(tree.children[0].stage, "work");
    }

    #[test]
    fn drop_without_finish_discards() {
        {
            let _session = begin("abandoned");
            let _s = stage("partial");
        }
        assert!(!active());
    }

    #[test]
    fn works_with_recording_disabled() {
        let _g = crate::test_guard();
        crate::set_enabled(false);
        let session = begin("request");
        {
            let _s = stage("parse");
        }
        let tree = session.finish().unwrap();
        crate::set_enabled(true);
        assert_eq!(tree.children.len(), 1, "profiles ignore the global gate");
    }
}
