//! Per-request profile trees: an explicitly requested, thread-local
//! recording of one query's pipeline stages.
//!
//! Unlike spans (always-on sampling into a shared ring) a profile is
//! *scoped*: the server begins a session on the worker thread that
//! evaluates a request, the instrumented layers push [`stage`] guards
//! (parse → compile → plan → the meta-algebra operators → mask apply)
//! and [`annotate`] tuple counts, and the finished tree is returned to
//! whoever asked — the `profile` wire command, or the slow-query log.
//!
//! When no session is active every hook is one thread-local check and
//! an early return, independent of the global [`crate::enabled`] flag:
//! profiles answer "why was *this* request slow", which must work even
//! when ambient metrics are switched off. Worker threads spawned by the
//! partitioned executor do not inherit the session; they hand their
//! timings back to the coordinating thread, which attaches them via
//! [`attach`].

use std::cell::RefCell;
use std::time::Instant;

/// One node of a finished profile tree.
#[derive(Debug, Clone)]
pub struct ProfileNode {
    /// Stage name (e.g. `parse`, `meta.select`, `exec.partition`).
    pub stage: String,
    /// Wall time spent in the stage, including children.
    pub duration_ns: u64,
    /// Key/value annotations (tuple counts, operator names, ...).
    pub fields: Vec<(String, String)>,
    /// Nested stages, in execution order.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    fn new(stage: &str) -> ProfileNode {
        ProfileNode {
            stage: stage.to_owned(),
            duration_ns: 0,
            fields: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Render as a JSON object string (hand-rolled; stable field
    /// order: stage, duration_ns, fields, children).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"stage\":\"");
        out.push_str(&crate::json_escape(&self.stage));
        out.push_str("\",\"duration_ns\":");
        out.push_str(&self.duration_ns.to_string());
        out.push_str(",\"fields\":{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&crate::json_escape(k));
            out.push_str("\":\"");
            out.push_str(&crate::json_escape(v));
            out.push('"');
        }
        out.push_str("},\"children\":[");
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&c.to_json());
        }
        out.push_str("]}");
        out
    }

    /// Render as an indented text tree (for the REPL and logs).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&self.stage);
        out.push_str(&format!(" {}ns", self.duration_ns));
        for (k, v) in &self.fields {
            out.push_str(&format!(" {k}={v}"));
        }
        out.push('\n');
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }

    /// Depth-first search for the first node with this stage name.
    pub fn find(&self, stage: &str) -> Option<&ProfileNode> {
        if self.stage == stage {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(stage))
    }
}

struct Frame {
    node: ProfileNode,
    started: Instant,
}

struct Collector {
    /// `stack[0]` is the root frame; deeper frames are open stages.
    stack: Vec<Frame>,
}

thread_local! {
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

/// Is a profile session active on this thread?
pub fn active() -> bool {
    COLLECTOR.with(|c| c.borrow().is_some())
}

/// A profile session bound to the current thread. Obtain via [`begin`];
/// consume with [`ProfileSession::finish`]. Dropping without finishing
/// discards the recording.
pub struct ProfileSession {
    /// False when a session was already active at [`begin`] — this
    /// handle is then a no-op and `finish` returns `None`.
    owner: bool,
}

/// Begin a profile session rooted at `label` on this thread. If one is
/// already active the call returns a passive handle (the outer session
/// keeps recording; nested stages attach to it).
pub fn begin(label: &str) -> ProfileSession {
    COLLECTOR.with(|c| {
        let mut slot = c.borrow_mut();
        if slot.is_some() {
            return ProfileSession { owner: false };
        }
        *slot = Some(Collector {
            stack: vec![Frame {
                node: ProfileNode::new(label),
                started: Instant::now(),
            }],
        });
        ProfileSession { owner: true }
    })
}

impl ProfileSession {
    /// End the session and return the finished tree (with any stages
    /// left open closed at their current elapsed time). `None` for a
    /// passive handle.
    pub fn finish(self) -> Option<ProfileNode> {
        if !self.owner {
            return None;
        }
        COLLECTOR.with(|c| {
            let collector = c.borrow_mut().take()?;
            let mut finished: Option<ProfileNode> = None;
            for frame in collector.stack.into_iter().rev() {
                let mut node = frame.node;
                node.duration_ns = frame.started.elapsed().as_nanos() as u64;
                if let Some(child) = finished.take() {
                    node.children.push(child);
                }
                finished = Some(node);
            }
            finished
        })
    }
}

impl Drop for ProfileSession {
    fn drop(&mut self) {
        if self.owner {
            COLLECTOR.with(|c| {
                c.borrow_mut().take();
            });
        }
    }
}

/// A stage guard: pushes a child stage while a session is active; on
/// drop the stage closes with its measured duration and attaches to the
/// parent. Without a session this is a no-op handle.
pub struct StageGuard {
    recording: bool,
}

/// Open a stage named `name`.
pub fn stage(name: &str) -> StageGuard {
    let recording = COLLECTOR.with(|c| {
        let mut slot = c.borrow_mut();
        match slot.as_mut() {
            Some(collector) => {
                collector.stack.push(Frame {
                    node: ProfileNode::new(name),
                    started: Instant::now(),
                });
                true
            }
            None => false,
        }
    });
    StageGuard { recording }
}

impl Drop for StageGuard {
    fn drop(&mut self) {
        if !self.recording {
            return;
        }
        COLLECTOR.with(|c| {
            let mut slot = c.borrow_mut();
            if let Some(collector) = slot.as_mut() {
                // The root frame never pops here: a guard only closes a
                // frame it pushed (stack depth >= 2 while any guard is
                // live, because the session owns stack[0]).
                if collector.stack.len() >= 2 {
                    let frame = collector.stack.pop().expect("frame present");
                    let mut node = frame.node;
                    node.duration_ns = frame.started.elapsed().as_nanos() as u64;
                    collector
                        .stack
                        .last_mut()
                        .expect("parent frame")
                        .node
                        .children
                        .push(node);
                }
            }
        });
    }
}

/// Annotate the innermost open stage (or the root) with a key/value.
/// No-op without a session.
pub fn annotate(key: &str, value: impl ToString) {
    COLLECTOR.with(|c| {
        let mut slot = c.borrow_mut();
        if let Some(collector) = slot.as_mut() {
            if let Some(frame) = collector.stack.last_mut() {
                frame.node.fields.push((key.to_owned(), value.to_string()));
            }
        }
    });
}

/// Attach an externally timed, already-finished child to the innermost
/// open stage — how the partitioned executor's worker timings (measured
/// on other threads) join the coordinator's profile. No-op without a
/// session.
pub fn attach(stage: &str, duration_ns: u64, fields: &[(&str, String)]) {
    COLLECTOR.with(|c| {
        let mut slot = c.borrow_mut();
        if let Some(collector) = slot.as_mut() {
            if let Some(frame) = collector.stack.last_mut() {
                frame.node.children.push(ProfileNode {
                    stage: stage.to_owned(),
                    duration_ns,
                    fields: fields
                        .iter()
                        .map(|(k, v)| (k.to_string(), v.clone()))
                        .collect(),
                    children: Vec::new(),
                });
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_nested_tree() {
        assert!(!active());
        let session = begin("request");
        assert!(active());
        {
            let _parse = stage("parse");
        }
        {
            let _outer = stage("mask.compute");
            annotate("rows", 42);
            {
                let _inner = stage("meta.select");
            }
            attach("exec.partition", 777, &[("part", "0".to_string())]);
        }
        let tree = session.finish().expect("owner session yields a tree");
        assert!(!active());
        assert_eq!(tree.stage, "request");
        assert_eq!(tree.children.len(), 2);
        assert_eq!(tree.children[0].stage, "parse");
        let mask = &tree.children[1];
        assert_eq!(mask.stage, "mask.compute");
        assert_eq!(mask.fields, vec![("rows".to_owned(), "42".to_owned())]);
        assert_eq!(mask.children[0].stage, "meta.select");
        assert_eq!(mask.children[1].stage, "exec.partition");
        assert_eq!(mask.children[1].duration_ns, 777);
        assert!(tree.find("meta.select").is_some());
        let json = tree.to_json();
        assert!(json.contains("\"stage\":\"request\""));
        assert!(json.contains("\"rows\":\"42\""));
        let text = tree.render_text();
        assert!(text.contains("  mask.compute"));
        assert!(text.contains("    meta.select"));
    }

    #[test]
    fn hooks_are_noops_without_a_session() {
        assert!(!active());
        let _s = stage("ignored");
        annotate("k", "v");
        attach("x", 1, &[]);
        assert!(!active());
    }

    #[test]
    fn nested_begin_is_passive() {
        let outer = begin("outer");
        let inner = begin("inner");
        assert!(inner.finish().is_none(), "nested session is passive");
        assert!(active(), "outer survives the nested finish");
        {
            let _s = stage("work");
        }
        let tree = outer.finish().unwrap();
        assert_eq!(tree.stage, "outer");
        assert_eq!(tree.children[0].stage, "work");
    }

    #[test]
    fn drop_without_finish_discards() {
        {
            let _session = begin("abandoned");
            let _s = stage("partial");
        }
        assert!(!active());
    }

    #[test]
    fn works_with_recording_disabled() {
        let _g = crate::test_guard();
        crate::set_enabled(false);
        let session = begin("request");
        {
            let _s = stage("parse");
        }
        let tree = session.finish().unwrap();
        crate::set_enabled(true);
        assert_eq!(tree.children.len(), 1, "profiles ignore the global gate");
    }
}
