//! Lock-cheap metrics: atomic counters, gauges, and fixed-bucket
//! latency histograms behind a global name-keyed registry.
//!
//! Updates are relaxed atomic ops on `&'static` metric handles; the
//! registry lock is only taken when a call site resolves its name the
//! first time (the [`counter!`]/[`gauge!`]/[`histogram!`] macros cache
//! the handle in a `OnceLock`) and when a snapshot is taken.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::json_escape;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`. No-op while recording is disabled.
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A gauge: a signed value that can move both ways (e.g. open
/// connections).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Set to an absolute value.
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Add a (possibly negative) delta.
    pub fn add(&self, d: i64) {
        if crate::enabled() {
            self.value.fetch_add(d, Ordering::Relaxed);
        }
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrement by one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of histogram buckets: 1ns..~4.3s in powers of four, plus an
/// overflow bucket.
pub const HISTOGRAM_BUCKETS: usize = 17;

/// Upper bound (inclusive, in ns) of bucket `i`: `4^(i+1)` ns, so the
/// buckets are 4ns, 16ns, 64ns, ... ~17s; the last bucket is +inf.
pub fn bucket_bound(i: usize) -> u64 {
    4u64.saturating_pow(i as u32 + 1)
}

/// The finite bucket upper bounds, in ns: every bucket except the last
/// (which is +inf). Shipped inside metrics snapshots so clients derive
/// percentiles from the server's actual bucket layout instead of
/// hard-coding it.
pub fn bucket_bounds_ns() -> [u64; HISTOGRAM_BUCKETS - 1] {
    std::array::from_fn(bucket_bound)
}

/// The bucket a duration of `ns` lands in — public so the exemplar
/// layer ([`crate::prom`]) can attach a trace id to exactly the bucket
/// that counted the observation.
pub fn bucket_index(ns: u64) -> usize {
    for i in 0..HISTOGRAM_BUCKETS - 1 {
        if ns <= bucket_bound(i) {
            return i;
        }
    }
    HISTOGRAM_BUCKETS - 1
}

/// A fixed-bucket latency histogram over nanoseconds. Recording is one
/// relaxed `fetch_add` on the bucket plus two on count/sum.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record a duration in nanoseconds. No-op while disabled.
    pub fn record_ns(&self, ns: u64) {
        if !crate::enabled() {
            return;
        }
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Record the time elapsed since a [`crate::start`] timestamp.
    /// `None` (recording was disabled at start) records nothing.
    pub fn record_since(&self, start: Option<Instant>) {
        if let Some(t) = start {
            self.record_ns(t.elapsed().as_nanos() as u64);
        }
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded durations, in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    fn load_buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_ns.store(0, Ordering::Relaxed);
    }
}

/// An ordered label set attached to a labeled metric.
pub type LabelSet = Vec<(String, String)>;

/// The global metric registry: name → leaked `&'static` handle.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    gauges: Mutex<BTreeMap<&'static str, &'static Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
    labeled_histograms: Mutex<BTreeMap<(&'static str, LabelSet), &'static Histogram>>,
}

impl Registry {
    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &'static str) -> &'static Counter {
        let mut map = self.counters.lock();
        map.entry(name).or_insert_with(|| Box::leak(Box::default()))
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &'static str) -> &'static Gauge {
        let mut map = self.gauges.lock();
        map.entry(name).or_insert_with(|| Box::leak(Box::default()))
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &'static str) -> &'static Histogram {
        let mut map = self.histograms.lock();
        map.entry(name).or_insert_with(|| Box::leak(Box::default()))
    }

    /// Get or create a histogram carrying a label set (e.g. the
    /// per-operator/per-partition executor timings). Resolution takes
    /// the registry lock and allocates the label vector, so call this
    /// per *partition*, never per row; keep label cardinality small and
    /// bounded (labels become distinct Prometheus series).
    pub fn histogram_labeled(
        &self,
        name: &'static str,
        labels: &[(&str, &str)],
    ) -> &'static Histogram {
        let key: LabelSet = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut map = self.labeled_histograms.lock();
        map.entry((name, key))
            .or_insert_with(|| Box::leak(Box::default()))
    }

    /// Capture a point-in-time snapshot of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(k, v)| (k.to_string(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(k, v)| (k.to_string(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(k, v)| {
                    (
                        k.to_string(),
                        HistogramSnapshot {
                            buckets: v.load_buckets(),
                            count: v.count(),
                            sum_ns: v.sum_ns(),
                        },
                    )
                })
                .collect(),
            labeled_histograms: self
                .labeled_histograms
                .lock()
                .iter()
                .map(|((name, labels), v)| LabeledHistogramSnapshot {
                    name: name.to_string(),
                    labels: labels.clone(),
                    hist: HistogramSnapshot {
                        buckets: v.load_buckets(),
                        count: v.count(),
                        sum_ns: v.sum_ns(),
                    },
                })
                .collect(),
        }
    }

    /// Reset every registered metric to zero (tests, benchmark phases).
    pub fn reset(&self) {
        for c in self.counters.lock().values() {
            c.reset();
        }
        for g in self.gauges.lock().values() {
            g.reset();
        }
        for h in self.histograms.lock().values() {
            h.reset();
        }
        for h in self.labeled_histograms.lock().values() {
            h.reset();
        }
    }
}

/// The process-global registry used by the `counter!`/`gauge!`/
/// `histogram!` macros.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// A point-in-time copy of one histogram's state.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_bound`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of observed durations in nanoseconds.
    pub sum_ns: u64,
}

impl HistogramSnapshot {
    /// Mean observation in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Estimate the `q`-quantile (0.0..=1.0) in nanoseconds from the
    /// bucket counts: returns the upper bound of the bucket containing
    /// the target rank.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_bound(i);
            }
        }
        bucket_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// The observations recorded between `earlier` and this snapshot:
    /// bucket-wise, count, and sum deltas. Saturating, so a registry
    /// reset between the two snapshots degrades to zeros rather than
    /// wrapping.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i])),
            count: self.count.saturating_sub(earlier.count),
            sum_ns: self.sum_ns.saturating_sub(earlier.sum_ns),
        }
    }

    /// Accumulate another snapshot's observations into this one
    /// (merging per-window deltas back into a multi-window view).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
    }
}

/// A point-in-time copy of one labeled histogram.
#[derive(Debug, Clone)]
pub struct LabeledHistogramSnapshot {
    /// The base metric name.
    pub name: String,
    /// The label set, in registration (sorted-key) order.
    pub labels: LabelSet,
    /// The histogram state.
    pub hist: HistogramSnapshot,
}

impl LabeledHistogramSnapshot {
    /// The flat `name{k="v",...}` key this series appears under in the
    /// snapshot JSON (label values escaped).
    pub fn flat_key(&self) -> String {
        let mut out = self.name.clone();
        out.push('{');
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&json_escape(v));
            out.push('"');
        }
        out.push('}');
        out
    }
}

/// A point-in-time copy of the whole registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Labeled histogram series, ordered by (name, labels).
    pub labeled_histograms: Vec<LabeledHistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Value of a counter, 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Every histogram series under a flat key: plain histograms under
    /// their name, labeled series under `name{k="v"}`. The windowed
    /// layer deltas over this flattened view so labeled series window
    /// like any other.
    pub fn flat_histograms(&self) -> BTreeMap<String, HistogramSnapshot> {
        let mut out = self.histograms.clone();
        for lh in &self.labeled_histograms {
            out.insert(lh.flat_key(), lh.hist.clone());
        }
        out
    }

    /// Render the snapshot as a JSON object string. Hand-rolled so it
    /// works identically with or without serde. The `bucket_bounds_ns`
    /// array carries the finite histogram bucket upper bounds (the last
    /// bucket is +inf), so clients never hard-code the layout.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"bucket_bounds_ns\":[");
        for (i, b) in bucket_bounds_ns().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&b.to_string());
        }
        out.push_str("],\"counters\":{");
        push_entries(&mut out, self.counters.iter(), |v| v.to_string());
        out.push_str("},\"gauges\":{");
        push_entries(&mut out, self.gauges.iter(), |v| v.to_string());
        out.push_str("},\"histograms\":{");
        let mut first = true;
        let mut push_hist = |out: &mut String, name: &str, h: &HistogramSnapshot| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('"');
            out.push_str(&json_escape(name));
            out.push_str("\":{\"count\":");
            out.push_str(&h.count.to_string());
            out.push_str(",\"sum_ns\":");
            out.push_str(&h.sum_ns.to_string());
            out.push_str(",\"mean_ns\":");
            out.push_str(&h.mean_ns().to_string());
            out.push_str(",\"p50_ns\":");
            out.push_str(&h.quantile_ns(0.50).to_string());
            out.push_str(",\"p95_ns\":");
            out.push_str(&h.quantile_ns(0.95).to_string());
            out.push_str(",\"p99_ns\":");
            out.push_str(&h.quantile_ns(0.99).to_string());
            out.push_str(",\"buckets\":[");
            for (i, n) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&n.to_string());
            }
            out.push_str("]}");
        };
        for (name, h) in &self.histograms {
            push_hist(&mut out, name, h);
        }
        for lh in &self.labeled_histograms {
            push_hist(&mut out, &lh.flat_key(), &lh.hist);
        }
        out.push_str("}}");
        out
    }
}

fn push_entries<'a, V: 'a>(
    out: &mut String,
    entries: impl Iterator<Item = (&'a String, &'a V)>,
    render: impl Fn(&V) -> String,
) {
    let mut first = true;
    for (name, v) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('"');
        out.push_str(&json_escape(name));
        out.push_str("\":");
        out.push_str(&render(v));
    }
}

/// Resolve (once per call site) a counter from the global registry.
/// The name is resolved once and cached: pass a fixed literal, never an
/// expression whose value can differ between invocations.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static H: ::std::sync::OnceLock<&'static $crate::Counter> = ::std::sync::OnceLock::new();
        *H.get_or_init(|| $crate::metrics::registry().counter($name))
    }};
}

/// Resolve (once per call site) a gauge from the global registry.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static H: ::std::sync::OnceLock<&'static $crate::Gauge> = ::std::sync::OnceLock::new();
        *H.get_or_init(|| $crate::metrics::registry().gauge($name))
    }};
}

/// Resolve (once per call site) a histogram from the global registry.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static H: ::std::sync::OnceLock<&'static $crate::Histogram> = ::std::sync::OnceLock::new();
        *H.get_or_init(|| $crate::metrics::registry().histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        let r = Registry::default();
        let c = r.counter("t.c");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = r.gauge("t.g");
        g.set(7);
        g.dec();
        assert_eq!(g.get(), 6);
        // same name → same handle
        assert_eq!(r.counter("t.c").get(), 5);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        let h = Histogram::default();
        for ns in [3, 10, 100, 1000, 1_000_000] {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum_ns(), 1_001_113);
        let snap = HistogramSnapshot {
            buckets: h.load_buckets(),
            count: h.count(),
            sum_ns: h.sum_ns(),
        };
        // p50 (3rd of 5) is the 100ns observation → bucket bound 256.
        assert_eq!(snap.quantile_ns(0.5), 256);
        assert!(snap.quantile_ns(1.0) >= 1_000_000);
        assert_eq!(snap.mean_ns(), 1_001_113 / 5);
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = crate::test_guard();
        let r = Registry::default();
        let c = r.counter("t.off");
        let h = r.histogram("t.off_h");
        crate::set_enabled(false);
        c.inc();
        h.record_ns(10);
        h.record_since(crate::start());
        crate::set_enabled(true);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn snapshot_json_parses_shape() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        let r = Registry::default();
        r.counter("a.count").add(2);
        r.gauge("b.gauge").set(-3);
        r.histogram("c.hist_ns").record_ns(50);
        let json = r.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"a.count\":2"));
        assert!(json.contains("\"b.gauge\":-3"));
        assert!(json.contains("\"c.hist_ns\""));
        assert!(json.contains("\"count\":1"));
        r.reset();
        assert_eq!(r.snapshot().counter("a.count"), 0);
    }

    #[test]
    fn bucket_bounds_monotone() {
        let _g = crate::test_guard();
        for i in 1..HISTOGRAM_BUCKETS {
            assert!(bucket_bound(i) > bucket_bound(i - 1));
        }
    }
}
