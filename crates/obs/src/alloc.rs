//! A zero-dependency counting [`GlobalAlloc`] wrapper: per-thread
//! allocation accounting attributable to profile stages.
//!
//! [`CountingAlloc`] wraps any allocator (by default
//! [`std::alloc::System`]) and, while counting is switched on
//! ([`set_counting`]), adds every allocation's size to a pair of
//! per-thread monotone counters — cumulative bytes requested and number
//! of allocations. The counters are `const`-initialized thread-locals
//! holding plain [`Cell`]s, so reading or bumping them never allocates
//! and the wrapper cannot recurse into itself.
//!
//! The profile layer ([`crate::profile`]) snapshots the counters when a
//! stage opens and closes; the delta becomes the stage's attributed
//! allocation cost ([`crate::ProfileNode::alloc_bytes`]). Attribution
//! is per *coordinating* thread: allocations made by the partitioned
//! executor's worker threads land on those threads' counters and are
//! not attributed (the same caveat as the profile's wall-clock tree,
//! whose worker timings arrive via [`crate::profile::attach`]).
//!
//! To actually count, a binary must install the wrapper:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: motro_obs::alloc::CountingAlloc = motro_obs::alloc::CountingAlloc::system();
//! ```
//!
//! Without the wrapper installed (or with counting off — the default)
//! [`snapshot`] returns whatever was last counted, which is zero in a
//! fresh thread: every attributed delta is zero and the whole facility
//! is inert. The hot-path cost with counting off is one relaxed atomic
//! load per allocation.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};

static COUNTING: AtomicBool = AtomicBool::new(false);

thread_local! {
    static BYTES: Cell<u64> = const { Cell::new(0) };
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Switch allocation counting on or off process-wide. Off (the
/// default), an installed [`CountingAlloc`] adds one relaxed atomic
/// load to each allocation and counts nothing.
pub fn set_counting(on: bool) {
    COUNTING.store(on, Ordering::Relaxed);
}

/// Is allocation counting switched on?
pub fn counting() -> bool {
    COUNTING.load(Ordering::Relaxed)
}

/// The current thread's cumulative allocation counters. Monotone:
/// deallocations are not subtracted — the counters measure allocation
/// *work*, not live bytes. All zeros unless a [`CountingAlloc`] is
/// installed and [`set_counting`] was switched on while this thread
/// allocated.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        bytes: BYTES.with(Cell::get),
        count: ALLOCS.with(Cell::get),
    }
}

/// A point-in-time copy of one thread's allocation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Cumulative bytes requested from the allocator on this thread.
    pub bytes: u64,
    /// Cumulative number of allocations on this thread.
    pub count: u64,
}

impl AllocSnapshot {
    /// Counter growth since `earlier` (saturating, so a stale snapshot
    /// from another thread never underflows).
    pub fn delta_since(&self, earlier: AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            bytes: self.bytes.saturating_sub(earlier.bytes),
            count: self.count.saturating_sub(earlier.count),
        }
    }
}

#[inline]
fn count(size: usize) {
    if !COUNTING.load(Ordering::Relaxed) {
        return;
    }
    BYTES.with(|b| b.set(b.get().wrapping_add(size as u64)));
    ALLOCS.with(|a| a.set(a.get().wrapping_add(1)));
}

/// A [`GlobalAlloc`] that delegates to `A` and counts per-thread
/// allocation bytes/counts while [`counting`] is on. See the module
/// docs for installation.
pub struct CountingAlloc<A = System> {
    inner: A,
}

impl CountingAlloc<System> {
    /// A counting wrapper over the system allocator — the usual thing
    /// to install with `#[global_allocator]`.
    pub const fn system() -> CountingAlloc<System> {
        CountingAlloc { inner: System }
    }
}

impl<A> CountingAlloc<A> {
    /// Wrap an arbitrary allocator.
    pub const fn new(inner: A) -> CountingAlloc<A> {
        CountingAlloc { inner }
    }
}

// SAFETY: pure delegation to `A` for every allocation path; the
// counting side effect touches only const-initialized `Cell`
// thread-locals, which never allocate or unwind.
unsafe impl<A: GlobalAlloc> GlobalAlloc for CountingAlloc<A> {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count(layout.size());
        self.inner.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.inner.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count(layout.size());
        self.inner.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // Count only growth: a realloc's new bytes are the allocation
        // work it adds beyond the original request.
        count(new_size.saturating_sub(layout.size()));
        self.inner.realloc(ptr, layout, new_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The obs test binary does not install the wrapper, so exercise the
    // counting path directly through the GlobalAlloc impl.
    #[test]
    fn wrapper_counts_only_while_switched_on() {
        let _g = crate::test_guard();
        let a = CountingAlloc::system();
        let layout = Layout::from_size_align(64, 8).unwrap();

        set_counting(false);
        let before = snapshot();
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            a.dealloc(p, layout);
        }
        assert_eq!(snapshot(), before, "counting off must be inert");

        set_counting(true);
        let before = snapshot();
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            a.dealloc(p, layout);
            let q = a.alloc_zeroed(layout);
            assert!(!q.is_null());
            let q = a.realloc(q, layout, 256);
            assert!(!q.is_null());
            a.dealloc(q, Layout::from_size_align(256, 8).unwrap());
        }
        set_counting(false);
        let delta = snapshot().delta_since(before);
        // alloc(64) + alloc_zeroed(64) + realloc growth (256-64).
        assert_eq!(delta.bytes, 64 + 64 + 192);
        assert_eq!(delta.count, 3, "dealloc never counts");
    }

    #[test]
    fn snapshots_are_monotone_and_deltas_saturate() {
        let a = AllocSnapshot {
            bytes: 10,
            count: 2,
        };
        let b = AllocSnapshot { bytes: 4, count: 1 };
        assert_eq!(a.delta_since(b), AllocSnapshot { bytes: 6, count: 1 });
        assert_eq!(b.delta_since(a), AllocSnapshot::default());
    }
}
