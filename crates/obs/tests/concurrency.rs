//! Registry concurrency: writers hammer shared counters and histograms
//! while a reader takes snapshots and rolls windows. Totals must come
//! out exact (no lost updates) and the snapshot stream must be
//! internally consistent: every metric location is a monotone atomic,
//! so successive snapshots taken by one reader can never observe a
//! counter, histogram count, or bucket go backwards; and once the
//! writers quiesce, bucket sums equal counts exactly.

use motro_obs::metrics::registry;
use motro_obs::window::{WindowConfig, WindowLayer};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const WRITERS: usize = 8;
const OPS_PER_WRITER: u64 = 20_000;

#[test]
fn hammered_registry_stays_exact_and_consistent() {
    motro_obs::set_enabled(true);
    let counter_name = "conc.test.ops";
    let hist_name = "conc.test.lat_ns";
    let base_count = registry().counter(counter_name).get();
    let base_hist = registry().histogram(hist_name).count();

    let layer = Arc::new(WindowLayer::new(WindowConfig {
        window: Duration::from_millis(1),
        retention: 64,
    }));
    let stop = Arc::new(AtomicBool::new(false));

    // Reader: interleave snapshots and window rolls as fast as
    // possible, checking per-location monotonicity between snapshots.
    let reader = {
        let stop = stop.clone();
        let layer = layer.clone();
        std::thread::spawn(move || {
            let mut observations = 0u64;
            let mut prev_counter = 0u64;
            let mut prev_hist: Option<motro_obs::metrics::HistogramSnapshot> = None;
            while !stop.load(Ordering::Relaxed) {
                let snap = registry().snapshot();
                let c = snap.counter(counter_name);
                assert!(
                    c >= prev_counter,
                    "counter went backwards: {prev_counter} -> {c}"
                );
                prev_counter = c;
                if let Some(h) = snap.histograms.get(hist_name) {
                    if let Some(prev) = &prev_hist {
                        assert!(h.count >= prev.count, "histogram count went backwards");
                        assert!(h.sum_ns >= prev.sum_ns, "histogram sum went backwards");
                        for (now, before) in h.buckets.iter().zip(prev.buckets.iter()) {
                            assert!(now >= before, "a bucket went backwards");
                        }
                    }
                    prev_hist = Some(h.clone());
                }
                layer.roll_if_due();
                observations += 1;
            }
            observations
        })
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            std::thread::spawn(move || {
                for i in 0..OPS_PER_WRITER {
                    registry().counter(counter_name).inc();
                    // Spread observations across buckets.
                    registry()
                        .histogram(hist_name)
                        .record_ns(1 << (w + i as usize % 8));
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let observations = reader.join().unwrap();
    assert!(observations > 0, "the reader actually ran");

    // Exactness: every increment landed.
    let total = WRITERS as u64 * OPS_PER_WRITER;
    assert_eq!(registry().counter(counter_name).get() - base_count, total);
    let final_snap = registry().snapshot();
    let h = &final_snap.histograms[hist_name];
    assert_eq!(h.count - base_hist, total);
    assert_eq!(
        h.buckets.iter().sum::<u64>(),
        h.count,
        "quiescent bucket sum equals count"
    );

    // Window deltas add back up to the cumulative total.
    layer.force_roll();
    let report = layer.report();
    let windowed: u64 = report.counters.get(counter_name).copied().unwrap_or(0);
    // The layer baselined after `base_count` was read, so every op this
    // test performed is inside some retained-or-evicted window; with
    // retention 64 and a fast reader some early windows may have been
    // evicted, so the merged delta is a lower bound that must not
    // exceed the true total.
    assert!(
        windowed <= total,
        "windowed delta {windowed} cannot exceed writes {total}"
    );
}

#[test]
fn labeled_histograms_are_thread_safe() {
    motro_obs::set_enabled(true);
    let threads: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                let part = t.to_string();
                for _ in 0..5_000 {
                    registry()
                        .histogram_labeled("conc.test.part_ns", &[("part", &part)])
                        .record_ns(64);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let snap = registry().snapshot();
    let total: u64 = snap
        .labeled_histograms
        .iter()
        .filter(|lh| lh.name == "conc.test.part_ns")
        .map(|lh| lh.hist.count)
        .sum();
    assert_eq!(total, 20_000);
    assert_eq!(
        snap.labeled_histograms
            .iter()
            .filter(|lh| lh.name == "conc.test.part_ns")
            .count(),
        4,
        "one series per label value"
    );
}
