//! Experiment B-JOIN: mask-computation cost versus query join width,
//! with the R1 product padding on and off.
//!
//! The meta-product is the combinatorial heart of the method: its size
//! is the product of the per-factor candidate counts (plus the padded
//! subsets under R1). This bench sweeps chain-join queries over 1–3
//! relations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use motro_bench::{ScaledWorld, WorldParams};
use motro_core::{AuthorizedEngine, RefinementConfig};
use motro_rel::CompOp;
use motro_views::{AttrRef, ConjunctiveQuery};
use std::hint::black_box;

/// `retrieve (R_{k-1}.K, ..., R0.K) where R_i.F = R_{i-1}.K …` — a
/// k-relation foreign-key chain.
fn chain_query(k: usize) -> ConjunctiveQuery {
    let mut q = ConjunctiveQuery::retrieve();
    for i in (0..k).rev() {
        q = q.target(&format!("R{i}"), "K");
    }
    let mut q = q.build();
    for i in (1..k).rev() {
        q.atoms.push(motro_views::CalcAtom {
            lhs: AttrRef::new(&format!("R{i}"), "F"),
            op: CompOp::Eq,
            rhs: motro_views::CalcTerm::Attr(AttrRef::new(&format!("R{}", i - 1), "K")),
        });
    }
    q
}

fn join_width(c: &mut Criterion) {
    let w = ScaledWorld::generate(WorldParams {
        relations: 3,
        rows_per_relation: 50,
        views: 24,
        users: 1,
        grants_per_user: 24,
        queries: 0,
        seed: 2,
    });
    for (label, config) in [
        ("padded", RefinementConfig::default()),
        (
            "unpadded",
            RefinementConfig {
                product_padding: false,
                ..RefinementConfig::default()
            },
        ),
    ] {
        let mut group = c.benchmark_group(format!("mask_vs_join_width/{label}"));
        group.sample_size(15);
        let engine = AuthorizedEngine::with_config(&w.db, &w.store, config);
        for k in 1..=3usize {
            let q = chain_query(k);
            let plan = motro_views::compile(&q, w.db.schema()).unwrap();
            group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
                b.iter(|| black_box(engine.mask_for_plan("u0", &plan).unwrap()));
            });
        }
        group.finish();
    }
}

criterion_group!(benches, join_width);
criterion_main!(benches);
