//! Experiment B-APPLY: mask-application cost versus answer cardinality.
//!
//! Applying `A'` to `A` is the only part of the method whose cost grows
//! with the data: each answer tuple is matched against each mask tuple
//! (constant equality, variable binding, constraint evaluation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use motro_core::constraint::{ConstraintAtom, ConstraintSet};
use motro_core::{Mask, MetaCell, MetaTuple};
use motro_rel::{tuple, CompOp, Domain, RelSchema, Relation};
use std::hint::black_box;

fn answer(rows: usize) -> Relation {
    let schema = RelSchema::base(
        "R1",
        &[("K", Domain::Str), ("C", Domain::Str), ("V", Domain::Int)],
    );
    let mut rel = Relation::new(schema);
    for i in 0..rows {
        rel.insert(tuple![
            format!("k{i}"),
            ["red", "green", "blue"][i % 3],
            (i as i64 * 7919) % 1_000_000
        ])
        .unwrap();
    }
    rel
}

fn masks(schema: &RelSchema) -> Mask {
    // A realistic mixed mask: a constant-restricted tuple, a
    // variable-with-interval tuple, and a column-only tuple.
    Mask::new(
        schema.clone(),
        vec![
            MetaTuple::new(
                "A",
                1,
                vec![
                    MetaCell::star(),
                    MetaCell::constant("red", true),
                    MetaCell::blank(),
                ],
                ConstraintSet::empty(),
            ),
            MetaTuple::new(
                "B",
                2,
                vec![MetaCell::star(), MetaCell::blank(), MetaCell::var(9, true)],
                ConstraintSet::new(vec![ConstraintAtom::var_const(9, CompOp::Le, 500_000)]),
            ),
            MetaTuple::new(
                "C",
                3,
                vec![MetaCell::star(), MetaCell::blank(), MetaCell::blank()],
                ConstraintSet::empty(),
            ),
        ],
    )
}

fn mask_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("mask_apply");
    group.sample_size(20);
    for &rows in &[100usize, 1_000, 10_000, 100_000] {
        let ans = answer(rows);
        let mask = masks(ans.schema());
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| black_box(mask.apply(&ans)));
        });
    }
    group.finish();
}

criterion_group!(benches, mask_apply);
criterion_main!(benches);
