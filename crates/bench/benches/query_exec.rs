//! Data-side query execution: the naive canonical executor (products →
//! selection → projection) versus the optimizing executor (selection
//! pushdown + greedy join ordering). The paper notes the naive strategy
//! is acceptable for the small meta-relations but that "for the actual
//! relations, where optimality is essential, a different strategy may
//! be implemented" — this bench quantifies that difference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use motro_bench::{ScaledWorld, WorldParams};
use motro_rel::{execute_optimized, CanonicalPlan, CompOp, Predicate, PredicateAtom, Term};
use std::hint::black_box;

/// A selective 3-way chain join over the generated world.
fn chain_plan() -> CanonicalPlan {
    // R2(K,F,C,V) ⋈ R1 ⋈ R0 with a selective filter on R2.C.
    CanonicalPlan {
        relations: vec!["R2".into(), "R1".into(), "R0".into()],
        selection: Predicate::all(vec![
            // R2.F = R1.K
            PredicateAtom::col_col(1, CompOp::Eq, 4),
            // R1.F = R0.K
            PredicateAtom::col_col(5, CompOp::Eq, 8),
            // R2.C = red (selective: 1/6 of rows)
            PredicateAtom {
                lhs: 2,
                op: CompOp::Eq,
                rhs: Term::Const("red".into()),
            },
        ]),
        projection: vec![0, 4, 8],
    }
}

fn exec_strategies(c: &mut Criterion) {
    for &rows in &[40usize, 100] {
        let w = ScaledWorld::generate(WorldParams {
            relations: 3,
            rows_per_relation: rows,
            views: 0,
            users: 0,
            grants_per_user: 0,
            queries: 0,
            seed: 4,
        });
        let plan = chain_plan();
        // Sanity: both strategies agree before we time them.
        assert!(plan
            .execute(&w.db)
            .unwrap()
            .set_eq(&execute_optimized(&plan, &w.db).unwrap()));
        let mut group = c.benchmark_group(format!("query_exec/{rows}_rows"));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter("naive"), &(), |b, _| {
            b.iter(|| black_box(plan.execute(&w.db).unwrap()));
        });
        group.bench_with_input(BenchmarkId::from_parameter("optimized"), &(), |b, _| {
            b.iter(|| black_box(execute_optimized(&plan, &w.db).unwrap()));
        });
        group.finish();
    }
}

criterion_group!(benches, exec_strategies);
criterion_main!(benches);
