//! Experiment B-BASE: baseline micro-benchmarks.
//!
//! * System R: the recursive-revoke fixpoint over grant chains of
//!   increasing depth (the classic worst case for Griffiths–Wade).
//! * INGRES: query-modification cost versus the number of stored
//!   permissions.
//! * Motro: the paper's Example 2 end-to-end, for a reference point
//!   against the two baselines' costs.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use motro_baselines::{IngresPermission, IngresStore, Privilege, SystemR};
use motro_core::fixtures;
use motro_core::AuthorizedEngine;
use motro_rel::{CompOp, Value};
use motro_views::{AttrRef, ConjunctiveQuery};
use std::hint::black_box;

fn grant_chain(depth: usize) -> SystemR {
    let mut s = SystemR::new();
    s.create_table("u0", "T").unwrap();
    for i in 0..depth {
        let grantor = format!("u{i}");
        let grantee = format!("u{}", i + 1);
        s.grant(&grantor, &grantee, "T", Privilege::Select, true)
            .unwrap();
    }
    s
}

fn systemr_revoke(c: &mut Criterion) {
    let mut group = c.benchmark_group("systemr_revoke_chain");
    group.sample_size(10);
    for &depth in &[8usize, 32, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &d| {
            b.iter_batched(
                || grant_chain(d),
                |mut s| {
                    // Revoking the root grant cascades down the chain.
                    black_box(s.revoke("u0", "u1", "T", Privilege::Select).unwrap())
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn ingres_modify(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingres_modify");
    group.sample_size(20);
    for &perms in &[16usize, 128, 1024] {
        let mut store = IngresStore::new();
        for i in 0..perms {
            store.permit(IngresPermission {
                user: format!("u{}", i % 8),
                rel: "EMPLOYEE".into(),
                attrs: ["NAME", "TITLE", "SALARY"].map(str::to_owned).into(),
                qual: vec![("SALARY".into(), CompOp::Lt, Value::int(i as i64))],
            });
        }
        let q = ConjunctiveQuery::retrieve()
            .target("EMPLOYEE", "NAME")
            .where_const(AttrRef::new("EMPLOYEE", "SALARY"), CompOp::Gt, 0)
            .build();
        group.bench_with_input(BenchmarkId::from_parameter(perms), &perms, |b, _| {
            b.iter(|| black_box(store.modify("u7", &q)));
        });
    }
    group.finish();
}

fn motro_example2_reference(c: &mut Criterion) {
    let db = fixtures::paper_database();
    let store = fixtures::paper_store();
    let engine = AuthorizedEngine::new(&db, &store);
    let q = ConjunctiveQuery::retrieve()
        .target("EMPLOYEE", "NAME")
        .target("EMPLOYEE", "SALARY")
        .where_const(AttrRef::new("EMPLOYEE", "TITLE"), CompOp::Eq, "engineer")
        .where_attr(
            AttrRef::new("EMPLOYEE", "NAME"),
            CompOp::Eq,
            AttrRef::new("ASSIGNMENT", "E_NAME"),
        )
        .where_attr(
            AttrRef::new("ASSIGNMENT", "P_NO"),
            CompOp::Eq,
            AttrRef::new("PROJECT", "NUMBER"),
        )
        .where_const(AttrRef::new("PROJECT", "BUDGET"), CompOp::Gt, 300_000)
        .build();
    c.bench_function("motro_example2_end_to_end", |b| {
        b.iter(|| black_box(engine.retrieve("Klein", &q).unwrap()));
    });
}

criterion_group!(
    benches,
    systemr_revoke,
    ingres_modify,
    motro_example2_reference
);
criterion_main!(benches);
