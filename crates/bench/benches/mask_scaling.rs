//! Experiment B-VIEWS: mask-computation cost versus the number of
//! stored views, and versus the data size.
//!
//! The paper argues the meta-plan is cheap because "meta-relations …
//! are relatively small". Two claims fall out, both measured here:
//! mask computation scales with the number of *views* (not rows), and
//! is independent of the database size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use motro_bench::{ScaledWorld, WorldParams};
use motro_core::AuthorizedEngine;
use motro_rel::{CanonicalPlan, Predicate};
use std::hint::black_box;

fn single_relation_plan() -> CanonicalPlan {
    CanonicalPlan {
        relations: vec!["R1".into()],
        selection: Predicate::always(),
        projection: vec![0, 2, 3],
    }
}

fn mask_vs_views(c: &mut Criterion) {
    let mut group = c.benchmark_group("mask_vs_views");
    group.sample_size(20);
    for &views in &[8usize, 32, 128, 512] {
        let w = ScaledWorld::generate(WorldParams {
            relations: 3,
            rows_per_relation: 100,
            views,
            users: 1,
            grants_per_user: views,
            queries: 0,
            seed: 1,
        });
        let plan = single_relation_plan();
        let engine = AuthorizedEngine::new(&w.db, &w.store);
        group.bench_with_input(BenchmarkId::from_parameter(views), &views, |b, _| {
            b.iter(|| black_box(engine.mask_for_plan("u0", &plan).unwrap()));
        });
    }
    group.finish();
}

fn mask_vs_datasize(c: &mut Criterion) {
    let mut group = c.benchmark_group("mask_vs_datasize");
    group.sample_size(20);
    for &rows in &[100usize, 1_000, 10_000] {
        let w = ScaledWorld::generate(WorldParams {
            relations: 3,
            rows_per_relation: rows,
            views: 32,
            users: 1,
            grants_per_user: 32,
            queries: 0,
            seed: 1,
        });
        let plan = single_relation_plan();
        let engine = AuthorizedEngine::new(&w.db, &w.store);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| black_box(engine.mask_for_plan("u0", &plan).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, mask_vs_views, mask_vs_datasize);
criterion_main!(benches);
