//! Experiment B-ABLATE (timing side): the cost of each refinement.
//!
//! The completeness side of the ablation (how much each refinement
//! contributes to delivered data) is produced by `report --exp ablate`;
//! this bench measures what each refinement costs in wall-clock on a
//! mixed authorized-retrieval workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use motro_bench::ablation_configs;
use motro_bench::{ScaledWorld, WorldParams};
use motro_core::AuthorizedEngine;
use std::hint::black_box;

fn ablation(c: &mut Criterion) {
    let w = ScaledWorld::generate(WorldParams {
        relations: 3,
        rows_per_relation: 200,
        views: 24,
        users: 2,
        grants_per_user: 12,
        queries: 8,
        seed: 9,
    });
    let mut group = c.benchmark_group("retrieve_by_config");
    group.sample_size(15);
    for (label, config) in ablation_configs() {
        let engine = AuthorizedEngine::with_config(&w.db, &w.store, config);
        group.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            b.iter(|| {
                for q in &w.queries {
                    black_box(engine.retrieve("u0", q).unwrap());
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
