//! Experiment T-UTIL: answer utility across the three authorization
//! models.
//!
//! The paper's introduction argues qualitatively that System R rejects
//! in-permission queries addressed at base relations, and that INGRES
//! (a) cannot express multi-relation permissions and (b) denies
//! queries that exceed their column permissions instead of reducing
//! them. This experiment quantifies those claims: for five workload
//! classes with *known-by-construction* entitled answers, each model's
//! **utility** is the fraction of entitled cells it actually delivers.
//!
//! Expected shape (recorded in EXPERIMENTS.md): Motro delivers 1.0
//! everywhere; INGRES delivers 1.0 only when the permission is
//! single-relation and the query stays within its column set; System R
//! delivers 0.0 for every base-addressed query, and recovers only the
//! classes a user can re-aim at the granted view.

use motro_baselines::{IngresOutcome, IngresPermission, IngresStore, Privilege, SystemR};
use motro_core::{AuthStore, AuthorizedEngine, RefinementConfig};
use motro_rel::{algebra, CompOp, Database, Predicate, PredicateAtom, Value};
use motro_views::{compile, AttrRef, ConjunctiveQuery};
use serde::Serialize;

use crate::workload::{ScaledWorld, WorldParams};

/// The five workload classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum WorkloadClass {
    /// Query identical to the granted view.
    Exact,
    /// Query strictly narrower than the granted view.
    Subview,
    /// Query requesting one column beyond the granted view.
    SupersetColumn,
    /// Granted view joins two relations; query stays within it.
    MultiRelation,
    /// Query row range partially overlapping the view's.
    RowOverlap,
    /// A product query touching a relation the user has no view on; the
    /// permitted factor's columns are entitled (needs refinement R1).
    PartialFactor,
    /// Two single-column views over one relation, a query selecting on
    /// both columns (needs refinement R3 to survive the selections).
    ColumnSplit,
}

impl WorkloadClass {
    /// All classes, report order.
    pub const ALL: [WorkloadClass; 7] = [
        WorkloadClass::Exact,
        WorkloadClass::Subview,
        WorkloadClass::SupersetColumn,
        WorkloadClass::MultiRelation,
        WorkloadClass::RowOverlap,
        WorkloadClass::PartialFactor,
        WorkloadClass::ColumnSplit,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadClass::Exact => "exact view",
            WorkloadClass::Subview => "subview",
            WorkloadClass::SupersetColumn => "superset column",
            WorkloadClass::MultiRelation => "multi-relation view",
            WorkloadClass::RowOverlap => "row overlap",
            WorkloadClass::PartialFactor => "partial factor (R1)",
            WorkloadClass::ColumnSplit => "column split (R3)",
        }
    }
}

/// One model's score on one class.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ModelScore {
    /// Cells delivered.
    pub delivered: usize,
    /// Utility = delivered / entitled (0 when entitled is 0).
    pub utility: f64,
}

fn score(delivered: usize, entitled: usize) -> ModelScore {
    ModelScore {
        delivered,
        utility: if entitled == 0 {
            0.0
        } else {
            delivered as f64 / entitled as f64
        },
    }
}

/// One row of the utility table.
#[derive(Debug, Clone, Serialize)]
pub struct UtilityRow {
    /// The workload class.
    pub class: WorkloadClass,
    /// Ground-truth entitled cells.
    pub entitled: usize,
    /// Motro, refined configuration.
    pub motro: ModelScore,
    /// Motro with all refinements off (plain Definitions 1–3).
    pub motro_plain: ModelScore,
    /// INGRES query modification.
    pub ingres: ModelScore,
    /// System R, query addressed at base relations.
    pub system_r_base: ModelScore,
    /// System R, query re-aimed at the granted view where expressible.
    pub system_r_view: ModelScore,
}

struct ClassSetup {
    views: Vec<ConjunctiveQuery>,
    query: ConjunctiveQuery,
    /// Entitled cells, computed on the database.
    entitled: usize,
    /// INGRES translation of the permissions, when expressible.
    ingres_perms: Vec<IngresPermission>,
    /// For the view-addressed System R run: (projection over the view's
    /// output, extra selection over the view's output), when the query
    /// is expressible over the view.
    view_addressed: Option<(Vec<usize>, Predicate)>,
}

fn count_answer_cells(q: &ConjunctiveQuery, db: &Database) -> usize {
    let plan = compile(q, db.schema()).expect("class queries compile");
    let ans = plan.execute(db).expect("class queries run");
    ans.len() * ans.schema().arity()
}

fn class_setup(class: WorkloadClass, db: &Database) -> ClassSetup {
    match class {
        WorkloadClass::Exact => {
            let view = ConjunctiveQuery::view("W")
                .target("R1", "K")
                .target("R1", "C")
                .target("R1", "V")
                .where_const(AttrRef::new("R1", "C"), CompOp::Eq, "red")
                .build();
            let mut query = view.clone();
            query.name = None;
            let entitled = count_answer_cells(&query, db);
            ClassSetup {
                views: vec![view],
                query,
                entitled,
                ingres_perms: vec![IngresPermission {
                    user: "u".into(),
                    rel: "R1".into(),
                    attrs: ["K", "C", "V"].map(str::to_owned).into(),
                    qual: vec![("C".into(), CompOp::Eq, Value::str("red"))],
                }],
                // View output = (K, C, V); the query is the identity.
                view_addressed: Some(((0..3).collect(), Predicate::always())),
            }
        }
        WorkloadClass::Subview => {
            let view = ConjunctiveQuery::view("W")
                .target("R1", "K")
                .target("R1", "C")
                .target("R1", "V")
                .where_const(AttrRef::new("R1", "C"), CompOp::Eq, "red")
                .build();
            let query = ConjunctiveQuery::retrieve()
                .target("R1", "K")
                .target("R1", "V")
                .where_const(AttrRef::new("R1", "C"), CompOp::Eq, "red")
                .where_const(AttrRef::new("R1", "V"), CompOp::Ge, 500_000)
                .build();
            let entitled = count_answer_cells(&query, db);
            ClassSetup {
                views: vec![view],
                query,
                entitled,
                ingres_perms: vec![IngresPermission {
                    user: "u".into(),
                    rel: "R1".into(),
                    attrs: ["K", "C", "V"].map(str::to_owned).into(),
                    qual: vec![("C".into(), CompOp::Eq, Value::str("red"))],
                }],
                // Over the view output (K, C, V): project K, V; select
                // V ≥ 500k (C = red already holds inside the view).
                view_addressed: Some((
                    vec![0, 2],
                    Predicate::atom(PredicateAtom::col_const(2, CompOp::Ge, 500_000)),
                )),
            }
        }
        WorkloadClass::SupersetColumn => {
            let view = ConjunctiveQuery::view("W")
                .target("R1", "K")
                .target("R1", "C")
                .where_const(AttrRef::new("R1", "C"), CompOp::Eq, "red")
                .build();
            let query = ConjunctiveQuery::retrieve()
                .target("R1", "K")
                .target("R1", "C")
                .target("R1", "V")
                .where_const(AttrRef::new("R1", "C"), CompOp::Eq, "red")
                .build();
            // Entitled: the K and C columns of the answer (V exceeds the
            // permission).
            let plan = compile(&query, db.schema()).unwrap();
            let rows = plan.execute(db).unwrap().len();
            ClassSetup {
                views: vec![view],
                query,
                entitled: rows * 2,
                ingres_perms: vec![IngresPermission {
                    user: "u".into(),
                    rel: "R1".into(),
                    attrs: ["K", "C"].map(str::to_owned).into(),
                    qual: vec![("C".into(), CompOp::Eq, Value::str("red"))],
                }],
                // V is not in the view's output: inexpressible.
                view_addressed: None,
            }
        }
        WorkloadClass::MultiRelation => {
            let view = ConjunctiveQuery::view("W")
                .target("R1", "K")
                .target("R1", "F")
                .target("R0", "K")
                .target("R0", "C")
                .where_attr(AttrRef::new("R1", "F"), CompOp::Eq, AttrRef::new("R0", "K"))
                .build();
            let query = ConjunctiveQuery::retrieve()
                .target("R1", "K")
                .target("R0", "C")
                .where_attr(AttrRef::new("R1", "F"), CompOp::Eq, AttrRef::new("R0", "K"))
                .build();
            let entitled = count_answer_cells(&query, db);
            ClassSetup {
                views: vec![view],
                query,
                entitled,
                // A multi-relation permission is inexpressible in
                // INGRES (Motro §1).
                ingres_perms: vec![],
                // View output = (R1.K, R1.F, R0.K, R0.C): project 0, 3.
                view_addressed: Some((vec![0, 3], Predicate::always())),
            }
        }
        WorkloadClass::RowOverlap => {
            let view = ConjunctiveQuery::view("W")
                .target("R1", "K")
                .target("R1", "V")
                .where_const(AttrRef::new("R1", "V"), CompOp::Le, 600_000)
                .build();
            let query = ConjunctiveQuery::retrieve()
                .target("R1", "K")
                .target("R1", "V")
                .where_const(AttrRef::new("R1", "V"), CompOp::Ge, 300_000)
                .build();
            // Entitled: rows with V in [300k, 600k].
            let probe = ConjunctiveQuery::retrieve()
                .target("R1", "K")
                .target("R1", "V")
                .where_const(AttrRef::new("R1", "V"), CompOp::Ge, 300_000)
                .where_const(AttrRef::new("R1", "V"), CompOp::Le, 600_000)
                .build();
            let entitled = count_answer_cells(&probe, db);
            ClassSetup {
                views: vec![view],
                query,
                entitled,
                ingres_perms: vec![IngresPermission {
                    user: "u".into(),
                    rel: "R1".into(),
                    attrs: ["K", "V"].map(str::to_owned).into(),
                    qual: vec![("V".into(), CompOp::Le, Value::int(600_000))],
                }],
                view_addressed: Some((
                    vec![0, 1],
                    Predicate::atom(PredicateAtom::col_const(1, CompOp::Ge, 300_000)),
                )),
            }
        }
        WorkloadClass::PartialFactor => {
            // The paper's R1 motivation: a product whose other factor
            // the user holds nothing on; the permitted factor's
            // subviews must survive.
            let view = ConjunctiveQuery::view("W")
                .target("R1", "K")
                .target("R1", "C")
                .where_const(AttrRef::new("R1", "C"), CompOp::Eq, "red")
                .build();
            let query = ConjunctiveQuery::retrieve()
                .target("R1", "K")
                .target("R1", "C")
                .target("R0", "C")
                .where_const(AttrRef::new("R1", "C"), CompOp::Eq, "red")
                .build();
            // Entitled: the distinct (K, C) projections — masking R0.C
            // collapses the product's replications (set semantics).
            let probe = ConjunctiveQuery::retrieve()
                .target("R1", "K")
                .target("R1", "C")
                .where_const(AttrRef::new("R1", "C"), CompOp::Eq, "red")
                .build();
            let entitled = count_answer_cells(&probe, db);
            ClassSetup {
                views: vec![view],
                query,
                entitled,
                ingres_perms: vec![IngresPermission {
                    user: "u".into(),
                    rel: "R1".into(),
                    attrs: ["K", "C"].map(str::to_owned).into(),
                    qual: vec![("C".into(), CompOp::Eq, Value::str("red"))],
                }],
                // The query touches R0, outside the view: inexpressible.
                view_addressed: None,
            }
        }
        WorkloadClass::ColumnSplit => {
            // Two key-sharing single-column views; the query selects on
            // both columns, so no single view survives the selections —
            // only their R3 combination does.
            let v1 = ConjunctiveQuery::view("W")
                .target("R1", "K")
                .target("R1", "C")
                .build();
            let v2 = ConjunctiveQuery::view("W2")
                .target("R1", "K")
                .target("R1", "V")
                .build();
            let query = ConjunctiveQuery::retrieve()
                .target("R1", "K")
                .target("R1", "C")
                .target("R1", "V")
                .where_const(AttrRef::new("R1", "C"), CompOp::Eq, "red")
                .where_const(AttrRef::new("R1", "V"), CompOp::Ge, 300_000)
                .build();
            let entitled = count_answer_cells(&query, db);
            ClassSetup {
                views: vec![v1, v2],
                query,
                entitled,
                // The use set {K, C, V} exceeds each single permission:
                // INGRES rejects (its documented under-delivery).
                ingres_perms: vec![
                    IngresPermission {
                        user: "u".into(),
                        rel: "R1".into(),
                        attrs: ["K", "C"].map(str::to_owned).into(),
                        qual: vec![],
                    },
                    IngresPermission {
                        user: "u".into(),
                        rel: "R1".into(),
                        attrs: ["K", "V"].map(str::to_owned).into(),
                        qual: vec![],
                    },
                ],
                // No single view covers the three columns.
                view_addressed: None,
            }
        }
    }
}

fn run_motro(db: &Database, setup: &ClassSetup, config: RefinementConfig) -> usize {
    let mut store = AuthStore::new(db.schema().clone());
    for v in &setup.views {
        store.define_view(v).expect("class views define");
        store
            .permit(v.name.as_deref().expect("class views are named"), "u")
            .expect("just defined");
    }
    let engine = AuthorizedEngine::with_config(db, &store, config);
    engine
        .retrieve("u", &setup.query)
        .expect("class queries run")
        .masked
        .visible_cells()
}

fn run_ingres(db: &Database, setup: &ClassSetup) -> usize {
    if setup.ingres_perms.is_empty() {
        return 0;
    }
    let mut store = IngresStore::new();
    for p in &setup.ingres_perms {
        store.permit(p.clone());
    }
    match store.modify("u", &setup.query) {
        IngresOutcome::Modified(m) => {
            let plan = compile(&m, db.schema()).expect("modified queries compile");
            let ans = plan.execute(db).expect("modified queries run");
            ans.len() * ans.schema().arity()
        }
        IngresOutcome::Rejected { .. } => 0,
    }
}

fn run_system_r(db: &Database, setup: &ClassSetup, view_addressed: bool) -> usize {
    let mut sr = SystemR::new();
    for rel in db.schema().names() {
        sr.create_table("admin", rel).expect("fresh catalog");
    }
    let plan = compile(&setup.views[0], db.schema()).expect("class views compile");
    sr.create_view("admin", "W", plan).expect("admin owns all");
    sr.grant("admin", "u", "W", Privilege::Select, false)
        .expect("admin grants");

    if !view_addressed {
        // Base-addressed: all-or-nothing check on the base relations.
        let names: Vec<String> = setup.query.factors().into_iter().map(|f| f.0).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        if sr.authorize_query("u", &refs) {
            return count_answer_cells(&setup.query, db);
        }
        return 0;
    }
    // View-addressed: the cooperative user re-aims the query at the
    // granted view when it is expressible as selection + projection
    // over the view's output.
    let Some((projection, extra)) = &setup.view_addressed else {
        return 0;
    };
    let view_arity = setup.views[0].targets.len();
    let identity: Vec<usize> = (0..view_arity).collect();
    match sr.execute_view_query(db, "u", "W", &identity) {
        Ok(Some(view_out)) => {
            let selected = algebra::select(&view_out, extra).expect("extra selection typechecks");
            let projected = algebra::project(&selected, projection);
            projected.len() * projected.schema().arity()
        }
        _ => 0,
    }
}

/// Run the full utility experiment on a deterministic world.
pub fn utility_table(rows_per_relation: usize, seed: u64) -> Vec<UtilityRow> {
    let world = ScaledWorld::generate(WorldParams {
        relations: 2,
        rows_per_relation,
        views: 0,
        users: 0,
        grants_per_user: 0,
        queries: 0,
        seed,
    });
    let db = &world.db;
    WorkloadClass::ALL
        .iter()
        .map(|&class| {
            let setup = class_setup(class, db);
            let entitled = setup.entitled;
            UtilityRow {
                class,
                entitled,
                motro: score(run_motro(db, &setup, RefinementConfig::default()), entitled),
                motro_plain: score(run_motro(db, &setup, RefinementConfig::plain()), entitled),
                ingres: score(run_ingres(db, &setup), entitled),
                system_r_base: score(run_system_r(db, &setup, false), entitled),
                system_r_view: score(run_system_r(db, &setup, true), entitled),
            }
        })
        .collect()
}

/// Render the utility table for the report.
pub fn render_utility_table(rows: &[UtilityRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:>9} {:>8} {:>8} {:>8} {:>9} {:>9}\n",
        "class", "entitled", "Motro", "plain", "INGRES", "SysR/base", "SysR/view"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<22} {:>9} {:>8.2} {:>8.2} {:>8.2} {:>9.2} {:>9.2}\n",
            r.class.label(),
            r.entitled,
            r.motro.utility,
            r.motro_plain.utility,
            r.ingres.utility,
            r.system_r_base.utility,
            r.system_r_view.utility,
        ));
    }
    out
}

/// One row of the ablation table (experiment B-ABLATE): the Motro
/// engine's utility per workload class under a refinement
/// configuration.
#[derive(Debug, Clone, Serialize)]
pub struct AblationRow {
    /// Configuration label.
    pub config: &'static str,
    /// Utility per class, in [`WorkloadClass::ALL`] order.
    pub utility: Vec<f64>,
}

/// The named configurations the ablation sweeps.
pub fn ablation_configs() -> Vec<(&'static str, RefinementConfig)> {
    let on = RefinementConfig::default();
    vec![
        ("all refinements", on),
        (
            "- R1 padding",
            RefinementConfig {
                product_padding: false,
                ..on
            },
        ),
        (
            "- R2 four-case",
            RefinementConfig {
                four_case_selection: false,
                ..on
            },
        ),
        (
            "- R3 self-join",
            RefinementConfig {
                self_join: false,
                ..on
            },
        ),
        ("plain (Defs 1-3)", RefinementConfig::plain()),
    ]
}

/// Run the ablation: per configuration, utility on every workload
/// class.
pub fn ablation_table(rows_per_relation: usize, seed: u64) -> Vec<AblationRow> {
    let world = ScaledWorld::generate(WorldParams {
        relations: 2,
        rows_per_relation,
        views: 0,
        users: 0,
        grants_per_user: 0,
        queries: 0,
        seed,
    });
    let db = &world.db;
    ablation_configs()
        .into_iter()
        .map(|(label, config)| {
            let utility = WorkloadClass::ALL
                .iter()
                .map(|&class| {
                    let setup = class_setup(class, db);
                    score(run_motro(db, &setup, config), setup.entitled).utility
                })
                .collect();
            AblationRow {
                config: label,
                utility,
            }
        })
        .collect()
}

/// Render the ablation table for the report.
pub fn render_ablation_table(rows: &[AblationRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<18}", "config"));
    for c in WorkloadClass::ALL {
        out.push_str(&format!(" {:>12}", c.label().split(' ').next().unwrap()));
    }
    out.push('\n');
    for r in rows {
        out.push_str(&format!("{:<18}", r.config));
        for u in &r.utility {
            out.push_str(&format!(" {u:>12.2}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utility_shape_matches_paper_claims() {
        let rows = utility_table(60, 17);
        for r in &rows {
            assert!(r.entitled > 0, "class {:?} generated no data", r.class);
            // Motro (refined) always delivers the entitled portion.
            assert!(
                (r.motro.utility - 1.0).abs() < 1e-9,
                "Motro under-delivers on {:?}: {}",
                r.class,
                r.motro.utility
            );
            // System R base-addressed never delivers.
            assert_eq!(r.system_r_base.delivered, 0, "class {:?}", r.class);
            // No model over-delivers beyond the entitled cells.
            for s in [r.motro, r.motro_plain, r.ingres, r.system_r_view] {
                assert!(
                    s.utility <= 1.0 + 1e-9,
                    "class {:?}: {}",
                    r.class,
                    s.utility
                );
            }
        }
        // INGRES: 0 on superset column (asymmetry), multi-relation
        // (inexpressible), partial factor (R0 uncovered), and column
        // split (no single covering permission); 1.0 elsewhere.
        let by = |c: WorkloadClass| rows.iter().find(|r| r.class == c).unwrap();
        assert_eq!(by(WorkloadClass::SupersetColumn).ingres.delivered, 0);
        assert_eq!(by(WorkloadClass::MultiRelation).ingres.delivered, 0);
        assert_eq!(by(WorkloadClass::PartialFactor).ingres.delivered, 0);
        assert_eq!(by(WorkloadClass::ColumnSplit).ingres.delivered, 0);
        assert!((by(WorkloadClass::Exact).ingres.utility - 1.0).abs() < 1e-9);
        assert!((by(WorkloadClass::Subview).ingres.utility - 1.0).abs() < 1e-9);
        assert!((by(WorkloadClass::RowOverlap).ingres.utility - 1.0).abs() < 1e-9);
        // System R view-addressed recovers everything except the
        // superset-column class.
        assert_eq!(by(WorkloadClass::SupersetColumn).system_r_view.delivered, 0);
        assert!((by(WorkloadClass::Exact).system_r_view.utility - 1.0).abs() < 1e-9);
        assert!((by(WorkloadClass::MultiRelation).system_r_view.utility - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ablation_full_config_dominates() {
        let rows = ablation_table(40, 11);
        let full = &rows[0];
        for r in &rows[1..] {
            for (a, b) in full.utility.iter().zip(&r.utility) {
                assert!(a + 1e-9 >= *b, "{} beats full config", r.config);
            }
        }
        // Removing any refinement costs some class (R1 → partial
        // factor, R2 → subview/multi-relation, R3 → column split);
        let plain = rows.last().unwrap();
        assert!(plain.utility.iter().sum::<f64>() < full.utility.iter().sum::<f64>());
        let t = render_ablation_table(&rows);
        assert!(t.contains("plain"));
    }

    #[test]
    fn render_is_stable() {
        let rows = utility_table(30, 5);
        let t = render_utility_table(&rows);
        assert!(t.contains("multi-relation view"));
        assert!(t.contains("Motro"));
    }
}
