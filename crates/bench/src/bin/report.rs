//! The experiment report: regenerates every table and worked example of
//! the reproduction (DESIGN.md's experiment index).
//!
//! ```text
//! report                # run everything
//! report --exp ex2      # one experiment: fig1 fig2 ex1 ex2 ex3
//!                       #   r2cases util ablate sizes storage
//! ```

use motro_bench::{
    ablation_table, render_ablation_table, render_utility_table, utility_table, ScaledWorld,
    WorldParams,
};
use motro_core::fixtures;
use motro_core::{AuthorizedEngine, Interval, MetaTuple, RefinementConfig};
use motro_rel::{CompOp, RelSchema, Value};
use motro_views::{compile, ConjunctiveQuery};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let only = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let want = |id: &str| only.as_deref().map(|o| o == id).unwrap_or(true);

    if want("fig1") {
        fig1();
    }
    if want("fig2") {
        fig2();
    }
    if want("ex1") {
        example(1);
    }
    if want("ex2") {
        example(2);
    }
    if want("ex3") {
        example(3);
    }
    if want("r2cases") {
        r2cases();
    }
    if want("util") {
        util();
    }
    if want("ablate") {
        ablate();
    }
    if want("sizes") {
        sizes();
    }
    if want("storage") {
        storage();
    }
}

fn heading(id: &str, title: &str) {
    println!("\n================================================================");
    println!("[{id}] {title}");
    println!("================================================================");
}

/// Render a list of meta-tuples as a paper-style table over `schema`.
fn meta_table(schema: &RelSchema, tuples: &[MetaTuple]) -> String {
    let mut headers = vec!["VIEW".to_owned()];
    headers.extend(schema.display_headers());
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    let rows: Vec<Vec<String>> = tuples
        .iter()
        .map(|t| {
            let mut row = vec![t.render_provenance()];
            row.extend(t.cells.iter().map(|c| c.render()));
            row
        })
        .collect();
    for r in &rows {
        for (i, c) in r.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        out.push('|');
        for (c, w) in cells.iter().zip(&widths) {
            out.push_str(&format!(" {c:w$} |", w = w));
        }
        out.push('\n');
    };
    line(&mut out, &headers);
    line(
        &mut out,
        &widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>(),
    );
    for r in &rows {
        line(&mut out, r);
    }
    out
}

fn fig1() {
    heading(
        "FIG1",
        "Figure 1: database extended with access permissions",
    );
    let db = fixtures::paper_database();
    let store = fixtures::paper_store();
    for rel in ["EMPLOYEE", "PROJECT", "ASSIGNMENT"] {
        println!("{rel} / {rel}':");
        println!(
            "{}",
            store
                .meta_table(rel, Some(db.relation(rel).expect("fixture relation")))
                .expect("fixture meta-relation")
        );
    }
    println!("COMPARISON:\n{}", store.comparison_table());
    println!("PERMISSION:\n{}", store.permission_table());
}

fn fig2() {
    heading(
        "FIG2",
        "Figure 2: the commutative diagram, executed (S over R; S' over R')",
    );
    let db = fixtures::paper_database();
    let store = fixtures::paper_store();
    let engine = AuthorizedEngine::new(&db, &store);
    // Sweep every (user, single-relation identity query) pair and show
    // answer vs mask side by side.
    for user in ["Brown", "Klein"] {
        for rel in ["EMPLOYEE", "PROJECT", "ASSIGNMENT"] {
            let arity = db.schema().schema_of(rel).expect("fixture scheme").arity();
            let plan = motro_rel::CanonicalPlan {
                relations: vec![rel.to_owned()],
                selection: motro_rel::Predicate::always(),
                projection: (0..arity).collect(),
            };
            let out = engine.retrieve_plan(user, &plan).expect("plan runs");
            println!(
                "{user:>6} x {rel:<10}: answer {} rows -> delivered {} rows, \
                 {} of {} cells visible, {} mask tuple(s)",
                out.answer.len(),
                out.masked.len(),
                out.masked.visible_cells(),
                out.answer.len() * arity,
                out.mask.len(),
            );
        }
    }
}

fn paper_query(n: usize) -> (&'static str, ConjunctiveQuery) {
    use motro_views::AttrRef;
    match n {
        1 => (
            "Brown",
            ConjunctiveQuery::retrieve()
                .target("PROJECT", "NUMBER")
                .target("PROJECT", "SPONSOR")
                .where_const(AttrRef::new("PROJECT", "BUDGET"), CompOp::Ge, 250_000)
                .build(),
        ),
        2 => (
            "Klein",
            ConjunctiveQuery::retrieve()
                .target("EMPLOYEE", "NAME")
                .target("EMPLOYEE", "SALARY")
                .where_const(AttrRef::new("EMPLOYEE", "TITLE"), CompOp::Eq, "engineer")
                .where_attr(
                    AttrRef::new("EMPLOYEE", "NAME"),
                    CompOp::Eq,
                    AttrRef::new("ASSIGNMENT", "E_NAME"),
                )
                .where_attr(
                    AttrRef::new("ASSIGNMENT", "P_NO"),
                    CompOp::Eq,
                    AttrRef::new("PROJECT", "NUMBER"),
                )
                .where_const(AttrRef::new("PROJECT", "BUDGET"), CompOp::Gt, 300_000)
                .build(),
        ),
        3 => (
            "Brown",
            ConjunctiveQuery::retrieve()
                .target_occ("EMPLOYEE", 1, "NAME")
                .target_occ("EMPLOYEE", 1, "SALARY")
                .target_occ("EMPLOYEE", 2, "NAME")
                .target_occ("EMPLOYEE", 2, "SALARY")
                .where_attr(
                    AttrRef::occ("EMPLOYEE", 1, "TITLE"),
                    CompOp::Eq,
                    AttrRef::occ("EMPLOYEE", 2, "TITLE"),
                )
                .build(),
        ),
        _ => unreachable!(),
    }
}

fn example(n: usize) {
    let (user, q) = paper_query(n);
    heading(
        &format!("EX{n}"),
        &format!("Section 5, Example {n} ({user}'s query)"),
    );
    println!("{q}\n");

    let db = fixtures::paper_database();
    let store = fixtures::paper_store();
    let engine = AuthorizedEngine::new(&db, &store);
    let out = engine.retrieve(user, &q).expect("paper query runs");
    let plan = compile(&q, db.schema()).expect("paper query compiles");
    let prod_schema = plan.product_schema(db.schema()).expect("plan validated");
    let out_schema = plan.output_schema(db.schema()).expect("plan validated");

    println!("Pruned meta-relations (views permitted to {user}, defined");
    println!("entirely within the query's relations):\n");
    for (rel, cands) in &out.trace.candidates {
        let schema = db.schema().schema_of(rel).expect("fixture scheme");
        println!("{rel}':\n{}", meta_table(schema, cands));
    }

    // The paper displays the *unpruned* product; show it alongside the
    // closure-pruned rows the theorem requires.
    let unpruned_engine = AuthorizedEngine::with_config(
        &db,
        &store,
        RefinementConfig {
            closure_pruning: false,
            ..RefinementConfig::default()
        },
    );
    let (_, unpruned_trace) = unpruned_engine
        .mask_for_plan(user, &plan)
        .expect("plan runs");
    println!(
        "Meta-product, replications removed ({} rows; the paper's display):",
        unpruned_trace.product.len()
    );
    println!("{}", meta_table(&prod_schema, &unpruned_trace.product));
    println!(
        "After the theorem's closure pruning ({} of {} rows remain):",
        out.trace.product.len(),
        out.trace.product_len,
    );
    println!("{}", meta_table(&prod_schema, &out.trace.product));

    println!("After the selections:");
    println!("{}", meta_table(&prod_schema, &out.trace.after_selection));

    println!("Final mask A' (after projection and minimization):");
    println!("{}", meta_table(&out_schema, &out.mask.tuples));

    println!(
        "Raw answer A ({} rows, withheld {}):",
        out.answer.len(),
        out.masked.withheld
    );
    println!("Delivered to {user}:");
    println!("{}", out.render());
}

fn r2cases() {
    heading(
        "R2CASES",
        "Section 4.2: the four selection cases on the budget example",
    );
    let mu = Interval::from_op(CompOp::Ge, Value::int(300_000))
        .intersect(&Interval::from_op(CompOp::Le, Value::int(600_000)))
        .expect("same domain");
    println!("view predicate mu: budgets in [300000, 600000]\n");
    let cases: [(&str, Interval); 4] = [
        (
            "query [200000, 400000]",
            Interval::from_op(CompOp::Ge, Value::int(200_000))
                .intersect(&Interval::from_op(CompOp::Le, Value::int(400_000)))
                .expect("same domain"),
        ),
        (
            "query [200000, 700000]",
            Interval::from_op(CompOp::Ge, Value::int(200_000))
                .intersect(&Interval::from_op(CompOp::Le, Value::int(700_000)))
                .expect("same domain"),
        ),
        (
            "query [400000, 500000]",
            Interval::from_op(CompOp::Ge, Value::int(400_000))
                .intersect(&Interval::from_op(CompOp::Le, Value::int(500_000)))
                .expect("same domain"),
        ),
        (
            "query (-inf, 300000)",
            Interval::from_op(CompOp::Lt, Value::int(300_000)),
        ),
    ];
    for (label, lambda) in cases {
        println!(
            "{label:<24} -> {:?} (paper: modify / retain / clear / discard)",
            Interval::four_case(&lambda, &mu)
        );
    }
}

fn util() {
    heading(
        "T-UTIL",
        "Utility (delivered / entitled cells) across the three models",
    );
    let rows = utility_table(60, 17);
    println!("{}", render_utility_table(&rows));
    println!(
        "Expected shape: Motro = 1.00 everywhere; INGRES = 0 on superset\n\
         column (asymmetry), multi-relation / partial factor\n\
         (inexpressible), and column split (no covering permission);\n\
         System R base-addressed = 0 everywhere; view-addressed recovers\n\
         only the classes expressible over a single granted view."
    );
}

fn ablate() {
    heading(
        "B-ABLATE",
        "Refinement ablation: Motro utility per configuration",
    );
    let rows = ablation_table(60, 17);
    println!("{}", render_ablation_table(&rows));
}

fn storage() {
    heading(
        "STORAGE",
        "Section 3's literal storage: the authorization state as relations",
    );
    let store = fixtures::paper_store();
    let tables = motro_core::encode_store(&store).expect("paper store encodes");
    for (name, t) in &tables {
        println!("{name}:\n{}", t.to_table());
    }
    // Reboot and confirm behavioral equivalence on Example 1.
    let db = fixtures::paper_database();
    let rebooted = motro_core::decode_store(db.schema(), &tables).expect("storage decodes");
    let (_, q) = paper_query(1);
    let before = AuthorizedEngine::new(&db, &store)
        .retrieve("Brown", &q)
        .expect("runs");
    let after = AuthorizedEngine::new(&db, &rebooted)
        .retrieve("Brown", &q)
        .expect("runs");
    println!(
        "reboot check (Example 1): delivered {} rows before, {} after; permits equal: {}",
        before.masked.len(),
        after.masked.len(),
        before
            .permits
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            == after
                .permits
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
    );
}

fn sizes() {
    heading(
        "SIZES",
        "Meta-relation sizes and meta-product growth (the 'relatively small' claim)",
    );
    for &views in &[8usize, 32, 64] {
        let w = ScaledWorld::generate(WorldParams {
            relations: 3,
            rows_per_relation: 1000,
            views,
            users: 1,
            grants_per_user: views,
            queries: 8,
            seed: 3,
        });
        for (label, config) in [
            ("with R3", RefinementConfig::default()),
            (
                "sans R3",
                RefinementConfig {
                    self_join: false,
                    ..RefinementConfig::default()
                },
            ),
        ] {
            let engine = AuthorizedEngine::with_config(&w.db, &w.store, config);
            let mut mask_rows = 0usize;
            let mut product_rows = 0usize;
            for q in &w.queries {
                let plan = compile(q, w.db.schema()).expect("generated query compiles");
                let (mask, trace) = engine
                    .mask_for_plan("u0", &plan)
                    .expect("generated query runs");
                mask_rows += mask.len();
                product_rows += trace.product_len;
            }
            println!(
                "views={views:>4} {label}: stored meta-tuples={:>4}, data tuples={:>6}, \
                 avg meta-product rows/query={:>8.1}, avg mask tuples/query={:>5.1}",
                w.store.total_meta_tuples(),
                w.db.total_tuples(),
                product_rows as f64 / w.queries.len() as f64,
                mask_rows as f64 / w.queries.len() as f64,
            );
        }
    }
}
