//! `parallel_scaling` — mask-pipeline throughput across executor
//! worker counts.
//!
//! Drives the loadgen workload (a [`ScaledWorld`] with the same
//! permission-heavy defaults) through [`AuthorizedEngine::retrieve_plan`]
//! in-process at worker counts 1, 2, 4, and 8, and reports throughput
//! and the speedup over the sequential executor. Because the partitioned
//! executor is deterministic (DESIGN.md §6c), every worker count
//! computes identical masks — only the wall clock changes.
//!
//! ```text
//! parallel_scaling [--requests N] [--relations N] [--rows N] [--views N]
//!                  [--users N] [--grants N] [--seed S] [--out FILE]
//!                  [--assert-speedup R] [--at-workers N]
//! ```
//!
//! Writes `BENCH_parallel_scaling.json` (or `--out`). With
//! `--assert-speedup R`, exits non-zero unless the speedup at
//! `--at-workers` (default 4) is at least `R` — the CI smoke guardrail.
//! The assertion is skipped (loudly) when the host exposes fewer than 2
//! CPUs, where no parallel speedup is physically possible.

use motro_authz::core::{AuthorizedEngine, RefinementConfig};
use motro_authz::rel::{CanonicalPlan, ExecConfig};
use motro_bench::{ScaledWorld, WorldParams};
use motro_views::compile;
use serde_json::{Map, Number, Value};
use std::time::Instant;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Args {
    requests: usize,
    relations: usize,
    rows: usize,
    views: usize,
    users: usize,
    grants: usize,
    seed: u64,
    out: String,
    assert_speedup: Option<f64>,
    at_workers: usize,
}

impl Default for Args {
    fn default() -> Args {
        // The loadgen world: permission-heavy, so the meta side
        // dominates and the partitioned executor has work to split.
        Args {
            requests: 48,
            relations: 6,
            rows: 25,
            views: 400,
            users: 8,
            grants: 250,
            seed: 7,
            out: "BENCH_parallel_scaling.json".to_owned(),
            assert_speedup: None,
            at_workers: 4,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: parallel_scaling [--requests N] [--relations N] [--rows N] [--views N] \
         [--users N] [--grants N] [--seed S] [--out FILE] [--assert-speedup R] [--at-workers N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut a = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut num = |target: &mut usize| {
            *target = it
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage())
        };
        match flag.as_str() {
            "--requests" => num(&mut a.requests),
            "--relations" => num(&mut a.relations),
            "--rows" => num(&mut a.rows),
            "--views" => num(&mut a.views),
            "--users" => num(&mut a.users),
            "--grants" => num(&mut a.grants),
            "--at-workers" => num(&mut a.at_workers),
            "--seed" => {
                a.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out" => a.out = it.next().unwrap_or_else(|| usage()),
            "--assert-speedup" => {
                a.assert_speedup = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            _ => usage(),
        }
    }
    a
}

/// One measurement: run every `(user, plan)` pair `requests` times under
/// `workers` executor threads; returns masks-per-second.
fn measure(
    world: &ScaledWorld,
    work: &[(String, CanonicalPlan)],
    requests: usize,
    workers: usize,
) -> f64 {
    let engine = AuthorizedEngine::with_exec(
        &world.db,
        &world.store,
        RefinementConfig::default(),
        ExecConfig::with_workers(workers),
    );
    let started = Instant::now();
    let mut done = 0usize;
    for _ in 0..requests {
        for (user, plan) in work {
            engine
                .retrieve_plan(user, plan)
                .expect("workload plan executes");
            done += 1;
        }
    }
    done as f64 / started.elapsed().as_secs_f64().max(1e-9)
}

fn main() {
    let args = parse_args();
    let world = ScaledWorld::generate(WorldParams {
        relations: args.relations,
        rows_per_relation: args.rows,
        views: args.views,
        users: args.users,
        grants_per_user: args.grants,
        queries: args.users.max(1),
        seed: args.seed,
    });

    // Compile once; prefer multi-relation plans (the R2-containment-
    // dominated case the executor partitions) but fall back to whatever
    // the world generated.
    let mut work: Vec<(String, CanonicalPlan)> = Vec::new();
    for (i, q) in world.queries.iter().enumerate() {
        let plan = compile(q, world.db.schema()).expect("workload query compiles");
        let user = world.users[i % world.users.len()].clone();
        work.push((user, plan));
    }
    let joins: Vec<(String, CanonicalPlan)> = work
        .iter()
        .filter(|(_, p)| p.relations.len() >= 2)
        .cloned()
        .collect();
    if !joins.is_empty() {
        work = joins;
    } else {
        eprintln!("parallel_scaling: workload has no join queries; using all queries");
    }

    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "parallel_scaling: {} plan(s) x {} requests, world: {} relations x {} rows, {} views, \
         {} grants/user, {} cpu(s)",
        work.len(),
        args.requests,
        args.relations,
        args.rows,
        args.views,
        args.grants,
        cpus
    );

    // Warm caches (allocator, store indexes) before timing.
    measure(&world, &work, 1, 1);

    let mut results = Vec::new();
    let mut baseline = 0.0f64;
    let mut speedup_at = 0.0f64;
    for &w in &WORKER_COUNTS {
        let rps = measure(&world, &work, args.requests, w);
        if w == 1 {
            baseline = rps;
        }
        let speedup = rps / baseline.max(1e-9);
        if w == args.at_workers {
            speedup_at = speedup;
        }
        eprintln!("  workers {w}: {rps:.1} masks/s (speedup {speedup:.2}x)");
        let mut m = Map::new();
        m.insert("workers".to_owned(), Value::Number(Number::from(w)));
        m.insert(
            "throughput_rps".to_owned(),
            Value::Number(Number::from(rps as u64)),
        );
        m.insert(
            "speedup_vs_sequential".to_owned(),
            Value::Number(Number::from_f64(speedup).unwrap_or_else(|| Number::from(0u64))),
        );
        results.push(Value::Object(m));
    }

    let mut config = Map::new();
    for (k, v) in [
        ("requests", args.requests),
        ("relations", args.relations),
        ("rows_per_relation", args.rows),
        ("views", args.views),
        ("users", args.users),
        ("grants_per_user", args.grants),
        ("plans", work.len()),
    ] {
        config.insert(k.to_owned(), Value::Number(Number::from(v)));
    }
    config.insert("seed".to_owned(), Value::Number(Number::from(args.seed)));

    let mut report = Map::new();
    report.insert(
        "experiment".to_owned(),
        Value::String("parallel_scaling".to_owned()),
    );
    report.insert("config".to_owned(), Value::Object(config));
    report.insert(
        "available_parallelism".to_owned(),
        Value::Number(Number::from(cpus)),
    );
    report.insert("results".to_owned(), Value::Array(results));
    let json = Value::Object(report).to_string();
    std::fs::write(&args.out, &json).expect("write report");
    println!("{json}");

    if let Some(bound) = args.assert_speedup {
        if cpus < 2 {
            eprintln!(
                "parallel_scaling: only {cpus} cpu(s) available — skipping the \
                 {bound}x speedup assertion (no parallel speedup is possible here)"
            );
        } else if speedup_at < bound {
            eprintln!(
                "parallel_scaling: speedup {speedup_at:.2}x at {} workers is below the \
                 required {bound}x",
                args.at_workers
            );
            std::process::exit(1);
        } else {
            eprintln!(
                "parallel_scaling: speedup {speedup_at:.2}x at {} workers meets the \
                 {bound}x bound",
                args.at_workers
            );
        }
    }
}
