//! `loadgen` — closed-loop load generator for `motro-server`.
//!
//! Starts an in-process server over a [`ScaledWorld`], drives it with
//! concurrent client connections issuing repeated identical
//! retrievals (the mask cache's best case, and the common case for a
//! dashboard-style workload), and reports throughput and latency
//! percentiles for the cache-disabled and cache-enabled
//! configurations side by side.
//!
//! ```text
//! loadgen [--clients N] [--requests N] [--relations N] [--rows N]
//!         [--views N] [--users N] [--grants N] [--workers N] [--seed S]
//!         [--out FILE] [--obs-report FILE] [--assert-overhead PCT]
//!         [--churn N] [--churn-out FILE] [--churn-journal FILE]
//!         [--assert-retention PCT]
//!         [--trace-report FILE] [--assert-trace-overhead PCT]
//!         [--prof-report FILE] [--assert-prof-overhead PCT]
//!         [--insight-report FILE] [--assert-insight-overhead PCT]
//! ```
//!
//! `--workers` sizes the partitioned mask-pipeline executor inside each
//! request (DESIGN.md §6c); 1 (the default) is fully sequential.
//!
//! Writes `BENCH_server_cache.json` (or `--out`) in the workspace
//! BENCH_* convention.
//!
//! With `--churn N`, additionally runs the invalidation-churn
//! experiment (DESIGN.md §6e): warm one cache entry per `(user,
//! query)` pair, then interleave `N` rounds of grant churn — each
//! round revokes (or re-permits) one view from a round-robin victim
//! and measures how many *unaffected* users' entries survive the
//! mutation, plus the post-churn retrieval latency once the
//! materializer has rewarmed the victim. Writes
//! `BENCH_invalidation_churn.json` (or `--churn-out`);
//! `--assert-retention PCT` exits non-zero if any round retains less
//! than the bound — the CI guardrail for dependency-tracked
//! invalidation. `--churn-journal FILE` journals the churn run so
//! `motro-audit replay` can verify it byte-for-byte.
//!
//! With `--obs-report`, additionally measures the cost of the
//! observability layer: three interleaved pairs of runs with telemetry
//! disabled/enabled — the enabled side records metrics, rolls the
//! sliding window, and appends to an audit journal (fsync off) —
//! reporting the smallest per-pair p50 ratio (the minimum damps
//! scheduler noise) plus the resulting metrics snapshot (verified to
//! parse as JSON) and percentiles re-derived client-side from the
//! snapshot's shipped `bucket_bounds_ns`. `--assert-overhead PCT`
//! exits non-zero when the measured overhead exceeds the bound — the
//! CI guardrail.
//!
//! With `--trace-report`, additionally measures the cost of the
//! tracing pipeline (DESIGN.md §6f) the same way: three interleaved
//! pairs of tracing-off/tracing-on runs — the on side head-samples at
//! 1.0, so *every* request mints a context, runs under a profile
//! session, passes tail retention, and lands in the trace store —
//! reporting the smallest per-pair p50 ratio.
//! `--assert-trace-overhead PCT` is the CI guardrail.
//!
//! With `--prof-report`, additionally measures the cost of continuous
//! profiling (DESIGN.md §6g) the same way: five interleaved pairs of
//! prof-off/prof-on runs — the on side profiles every request, counts
//! its allocations (this binary installs the counting allocator),
//! folds each finished tree into the global aggregate, and charges the
//! per-user cost ledger — reporting the smallest per-pair p50 ratio
//! plus collapsed-stack and ledger sanity checks.
//! `--assert-prof-overhead PCT` is the CI guardrail.
//!
//! With `--insight-report`, additionally measures the cost of the
//! authorization-analytics layer (DESIGN.md §6h) the same way: five
//! interleaved pairs of insight-off/insight-on runs — the on side
//! folds every request's mask outcome and R2 tally into the
//! per-(principal, views, relations) rollups — reporting the smallest
//! per-pair p50 ratio plus a rollup-count sanity check.
//! `--assert-insight-overhead PCT` is the CI guardrail.

use motro_authz::{Frontend, SharedFrontend};
use motro_bench::{ScaledWorld, WorldParams};
use motro_server::{Client, JournalConfig, Server, ServerConfig};
use serde_json::{Map, Number, Value};
use std::time::Instant;

/// Counting wrapper around the system allocator, so the prof-overhead
/// experiment measures the real `--prof` configuration (counting off,
/// the wrapper costs one relaxed atomic load per allocation).
#[global_allocator]
static ALLOC: motro_obs::alloc::CountingAlloc = motro_obs::alloc::CountingAlloc::system();

struct Args {
    clients: usize,
    requests: usize,
    relations: usize,
    rows: usize,
    views: usize,
    users: usize,
    grants: usize,
    workers: usize,
    seed: u64,
    out: String,
    obs_report: Option<String>,
    assert_overhead: Option<f64>,
    churn: usize,
    churn_out: String,
    churn_journal: Option<String>,
    assert_retention: Option<f64>,
    trace_report: Option<String>,
    assert_trace_overhead: Option<f64>,
    prof_report: Option<String>,
    assert_prof_overhead: Option<f64>,
    insight_report: Option<String>,
    assert_insight_overhead: Option<f64>,
}

impl Default for Args {
    fn default() -> Args {
        // A permission-heavy world: each user holds many grants, so the
        // meta side (mask computation) dominates the live data side and
        // the cache's effect is visible. Tune down with the flags for
        // quick smoke runs.
        Args {
            clients: 8,
            requests: 150,
            relations: 6,
            rows: 25,
            views: 400,
            users: 8,
            grants: 250,
            workers: 1,
            seed: 7,
            out: "BENCH_server_cache.json".to_owned(),
            obs_report: None,
            assert_overhead: None,
            churn: 0,
            churn_out: "BENCH_invalidation_churn.json".to_owned(),
            churn_journal: None,
            assert_retention: None,
            trace_report: None,
            assert_trace_overhead: None,
            prof_report: None,
            assert_prof_overhead: None,
            insight_report: None,
            assert_insight_overhead: None,
        }
    }
}

fn parse_args() -> Args {
    let mut a = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut num = |target: &mut usize| {
            *target = it
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage())
        };
        match flag.as_str() {
            "--clients" => num(&mut a.clients),
            "--requests" => num(&mut a.requests),
            "--relations" => num(&mut a.relations),
            "--rows" => num(&mut a.rows),
            "--views" => num(&mut a.views),
            "--users" => num(&mut a.users),
            "--grants" => num(&mut a.grants),
            "--workers" => num(&mut a.workers),
            "--seed" => {
                a.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out" => a.out = it.next().unwrap_or_else(|| usage()),
            "--obs-report" => a.obs_report = Some(it.next().unwrap_or_else(|| usage())),
            "--assert-overhead" => {
                a.assert_overhead = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--churn" => num(&mut a.churn),
            "--churn-out" => a.churn_out = it.next().unwrap_or_else(|| usage()),
            "--churn-journal" => a.churn_journal = Some(it.next().unwrap_or_else(|| usage())),
            "--assert-retention" => {
                a.assert_retention = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--trace-report" => a.trace_report = Some(it.next().unwrap_or_else(|| usage())),
            "--assert-trace-overhead" => {
                a.assert_trace_overhead = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--prof-report" => a.prof_report = Some(it.next().unwrap_or_else(|| usage())),
            "--assert-prof-overhead" => {
                a.assert_prof_overhead = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--insight-report" => a.insight_report = Some(it.next().unwrap_or_else(|| usage())),
            "--assert-insight-overhead" => {
                a.assert_insight_overhead = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            _ => usage(),
        }
    }
    a
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--clients N] [--requests N] [--relations N] [--rows N] \
         [--views N] [--users N] [--grants N] [--workers N] [--seed S] [--out FILE] \
         [--obs-report FILE] [--assert-overhead PCT] [--churn N] [--churn-out FILE] \
         [--churn-journal FILE] [--assert-retention PCT] [--trace-report FILE] \
         [--assert-trace-overhead PCT] [--prof-report FILE] [--assert-prof-overhead PCT] \
         [--insight-report FILE] [--assert-insight-overhead PCT]"
    );
    std::process::exit(2);
}

/// Per-run server shape for [`run`]: which optional subsystems the
/// measured server carries. Defaults to the bare configuration every
/// overhead experiment uses as its baseline — cache on, no journal,
/// no tracing, no profiling, no insight — so each experiment's "on"
/// side flips exactly the subsystem it measures.
struct RunConfig {
    cache_capacity: usize,
    journal: Option<JournalConfig>,
    trace: Option<(usize, f64)>,
    prof: bool,
    insight: bool,
}

impl Default for RunConfig {
    fn default() -> RunConfig {
        RunConfig {
            cache_capacity: 1024,
            journal: None,
            trace: None,
            prof: false,
            insight: false,
        }
    }
}

/// One measured run: every client issues `requests` identical
/// retrievals; returns all per-request latencies in nanoseconds plus
/// the wall-clock for the whole run.
fn run(
    world: &ScaledWorld,
    stmts: &[String],
    args: &Args,
    config: RunConfig,
) -> (Vec<u64>, f64, u64, u64) {
    let mut fe = Frontend::with_database(world.db.clone());
    *fe.auth_store_mut() = world.store.clone();
    fe.set_exec_config(motro_authz::rel::ExecConfig::with_workers(args.workers));
    let (trace_store, trace_sample) = config.trace.unwrap_or((0, 0.0));
    let server = Server::bind(
        "127.0.0.1:0",
        SharedFrontend::new(fe),
        ServerConfig {
            workers: args.clients.clamp(1, 8),
            cache_capacity: config.cache_capacity,
            journal: config.journal,
            trace_store,
            trace_sample,
            prof: config.prof,
            insight: config.insight,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    let started = Instant::now();
    let client_sample = config.trace.map(|(_, p)| p);
    let handles: Vec<_> = (0..args.clients)
        .map(|c| {
            let user = world.users[c % world.users.len()].clone();
            let stmt = stmts[c % stmts.len()].clone();
            let requests = args.requests;
            std::thread::spawn(move || {
                let mut client = Client::connect(addr, &user).expect("connect");
                client.set_trace(client_sample);
                let mut lat = Vec::with_capacity(requests);
                for _ in 0..requests {
                    let t = Instant::now();
                    client.retrieve(&stmt).expect("retrieve");
                    lat.push(t.elapsed().as_nanos() as u64);
                }
                lat
            })
        })
        .collect();
    let mut latencies = Vec::with_capacity(args.clients * args.requests);
    for h in handles {
        latencies.extend(h.join().expect("client thread"));
    }
    let wall = started.elapsed().as_secs_f64();
    let stats = server.cache().stats();
    (latencies, wall, stats.hits, stats.misses)
}

fn percentile(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(p * sorted.len() / 100).min(sorted.len() - 1)]
}

fn summarize(mut latencies: Vec<u64>, wall: f64, hits: u64, misses: u64) -> Map<String, Value> {
    latencies.sort_unstable();
    let n = latencies.len().max(1) as f64;
    let mean = latencies.iter().sum::<u64>() as f64 / n;
    let mut m = Map::new();
    let us = |ns: u64| Value::Number(Number::from(ns / 1_000));
    m.insert(
        "throughput_rps".to_owned(),
        Value::Number(Number::from(
            (latencies.len() as f64 / wall.max(1e-9)) as u64,
        )),
    );
    m.insert(
        "mean_us".to_owned(),
        Value::Number(Number::from((mean / 1_000.0) as u64)),
    );
    m.insert("p50_us".to_owned(), us(percentile(&latencies, 50)));
    m.insert("p90_us".to_owned(), us(percentile(&latencies, 90)));
    m.insert("p99_us".to_owned(), us(percentile(&latencies, 99)));
    m.insert(
        "requests".to_owned(),
        Value::Number(Number::from(latencies.len())),
    );
    m.insert("cache_hits".to_owned(), Value::Number(Number::from(hits)));
    m.insert(
        "cache_misses".to_owned(),
        Value::Number(Number::from(misses)),
    );
    m
}

fn mean_of(m: &Map<String, Value>) -> f64 {
    m.get("mean_us").and_then(Value::as_u64).unwrap_or(1) as f64
}

fn p50_of(mut latencies: Vec<u64>) -> u64 {
    latencies.sort_unstable();
    percentile(&latencies, 50)
}

fn mean_ns(latencies: &[u64]) -> f64 {
    latencies.iter().sum::<u64>() as f64 / latencies.len().max(1) as f64
}

/// Derive latency percentiles for the pipeline histograms purely from
/// the snapshot's shipped `bucket_bounds_ns` layout and raw bucket
/// counts — the way a remote dashboard would, with no knowledge of the
/// server's power-of-4 scheme. Cross-checked against the percentiles
/// the snapshot itself ships, so the two derivations can never drift.
fn derived_percentiles(parsed: &Value) -> Map<String, Value> {
    let bounds: Vec<u64> = parsed
        .get("bucket_bounds_ns")
        .and_then(Value::as_array)
        .expect("snapshot must ship bucket_bounds_ns")
        .iter()
        .map(|b| b.as_u64().expect("bound"))
        .collect();
    assert!(bounds.len() >= 2, "degenerate bucket layout: {bounds:?}");
    // The overflow bucket has no finite bound; extrapolate one more
    // step of whatever growth factor the shipped layout uses.
    let growth = (bounds[1] / bounds[0]).max(2);
    let quantile = |buckets: &[u64], q: f64| -> u64 {
        let count: u64 = buckets.iter().sum();
        if count == 0 {
            return 0;
        }
        let target = ((count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, n) in buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return match bounds.get(i) {
                    Some(b) => *b,
                    None => bounds[bounds.len() - 1].saturating_mul(growth),
                };
            }
        }
        bounds[bounds.len() - 1].saturating_mul(growth)
    };
    let mut out = Map::new();
    for h in ["meta.eval_ns", "mask.apply_ns", "plan.compile_ns"] {
        let hist = parsed
            .get("histograms")
            .and_then(|v| v.get(h))
            .unwrap_or_else(|| panic!("snapshot missing histogram {h}"));
        let buckets: Vec<u64> = hist
            .get("buckets")
            .and_then(Value::as_array)
            .expect("histogram buckets")
            .iter()
            .map(|b| b.as_u64().expect("bucket count"))
            .collect();
        let mut m = Map::new();
        for (key, q) in [("p50_ns", 0.50), ("p95_ns", 0.95), ("p99_ns", 0.99)] {
            let derived = quantile(&buckets, q);
            let shipped = hist.get(key).and_then(Value::as_u64).unwrap_or(0);
            assert_eq!(
                derived, shipped,
                "{h} {key}: derived from bucket_bounds_ns disagrees with the snapshot"
            );
            m.insert(key.to_owned(), Value::Number(Number::from(derived)));
        }
        out.insert(h.to_owned(), Value::Object(m));
    }
    out
}

/// The shared skeleton of every paired-overhead experiment:
/// `n` interleaved off/on run pairs over the same world, where `off`
/// produces a baseline run's latencies and `on` the instrumented
/// configuration's. Reports the smallest per-pair p50 ratio — the
/// minimum damps scheduler noise, since no real overhead can make a
/// pair *faster*. Returns the per-pair report entries and the
/// overhead percentage.
fn overhead_pairs(
    label: &str,
    n: usize,
    mut off: impl FnMut() -> Vec<u64>,
    mut on: impl FnMut() -> Vec<u64>,
) -> (Vec<Value>, f64) {
    let mut pairs = Vec::new();
    let mut best_ratio = f64::INFINITY;
    for i in 0..n {
        let lat_off = off();
        let lat_on = on();
        let (p50_off, p50_on) = (p50_of(lat_off.clone()), p50_of(lat_on.clone()));
        let ratio = p50_on as f64 / (p50_off as f64).max(1.0);
        best_ratio = best_ratio.min(ratio);
        eprintln!(
            "  {label} pair {}/{n}: p50 off {}us, on {}us (ratio {ratio:.3})",
            i + 1,
            p50_off / 1_000,
            p50_on / 1_000
        );
        let mut pair = Map::new();
        let num = |v: u64| Value::Number(Number::from(v));
        pair.insert("off_p50_us".to_owned(), num(p50_off / 1_000));
        pair.insert("on_p50_us".to_owned(), num(p50_on / 1_000));
        pair.insert(
            "off_mean_us".to_owned(),
            num(mean_ns(&lat_off) as u64 / 1_000),
        );
        pair.insert(
            "on_mean_us".to_owned(),
            num(mean_ns(&lat_on) as u64 / 1_000),
        );
        pairs.push(Value::Object(pair));
    }
    (pairs, (best_ratio - 1.0) * 100.0)
}

/// Measure the observability layer's cost: interleaved disabled/enabled
/// run pairs over the same world and statements. The enabled runs carry
/// the full telemetry load — metrics, windowing, and an audit journal
/// (fsync off) — so the measured overhead is what production pays.
/// Returns the report map and the overhead percentage (smallest
/// per-pair p50 ratio).
fn obs_overhead(world: &ScaledWorld, stmts: &[String], args: &Args) -> (Map<String, Value>, f64) {
    const PAIRS: usize = 3;
    motro_obs::window::global().configure(motro_obs::window::WindowConfig {
        window: std::time::Duration::from_secs(1),
        retention: 6,
    });
    let journal_path = std::env::temp_dir().join(format!(
        "motro-loadgen-{}-journal.jsonl",
        std::process::id()
    ));
    let (pairs, overhead_pct) = overhead_pairs(
        "obs",
        PAIRS,
        || {
            motro_obs::set_enabled(false);
            run(world, stmts, args, RunConfig::default()).0
        },
        || {
            motro_obs::set_enabled(true);
            let _ = std::fs::remove_file(&journal_path);
            let (lat, _, _, _) = run(
                world,
                stmts,
                args,
                RunConfig {
                    journal: Some(JournalConfig::new(journal_path.clone())),
                    ..RunConfig::default()
                },
            );
            motro_obs::window::global().force_roll();
            lat
        },
    );

    // The enabled runs populated the registry; the snapshot must be
    // well-formed JSON and carry the pipeline histograms and cache
    // counters the `stats` wire command exposes.
    let snapshot = motro_obs::metrics::registry().snapshot();
    let snapshot_json = snapshot.to_json();
    let parsed: Value = snapshot_json
        .parse()
        .expect("metrics snapshot must parse as JSON");
    for h in ["meta.eval_ns", "mask.apply_ns", "plan.compile_ns"] {
        assert!(
            parsed.get("histograms").and_then(|v| v.get(h)).is_some(),
            "snapshot missing histogram {h}"
        );
    }
    for c in ["server.cache.hits", "server.cache.misses"] {
        assert!(
            parsed.get("counters").and_then(|v| v.get(c)).is_some(),
            "snapshot missing counter {c}"
        );
    }
    // The enabled runs journaled their traffic: the journal counters
    // must have advanced, or the overhead figure measured nothing.
    assert!(
        parsed
            .get("counters")
            .and_then(|v| v.get("journal.records"))
            .and_then(Value::as_u64)
            .unwrap_or(0)
            >= 1,
        "journal.records never advanced during the enabled runs"
    );
    let derived = derived_percentiles(&parsed);
    let _ = std::fs::remove_file(&journal_path);

    let mut report = Map::new();
    report.insert(
        "experiment".to_owned(),
        Value::String("obs_overhead".to_owned()),
    );
    report.insert("pairs".to_owned(), Value::Array(pairs));
    report.insert(
        "overhead_pct".to_owned(),
        Value::Number(Number::from_f64(overhead_pct).unwrap_or_else(|| Number::from(0u64))),
    );
    report.insert("metrics_snapshot".to_owned(), parsed);
    report.insert("derived_percentiles".to_owned(), Value::Object(derived));
    (report, overhead_pct)
}

/// Measure the tracing pipeline's cost: interleaved off/on run pairs
/// over the same world and statements, telemetry enabled on both sides
/// so the figure isolates tracing. The on side is the worst case —
/// clients mint a context for every request (sample 1.0), the server
/// runs each under a profile session, evaluates tail retention, and
/// stores every trace. Returns the report map and the overhead
/// percentage (smallest per-pair p50 ratio).
fn trace_overhead(world: &ScaledWorld, stmts: &[String], args: &Args) -> (Map<String, Value>, f64) {
    const PAIRS: usize = 5;
    const STORE: usize = 256;
    motro_obs::set_enabled(true);
    let (pairs, overhead_pct) = overhead_pairs(
        "trace",
        PAIRS,
        || run(world, stmts, args, RunConfig::default()).0,
        || {
            run(
                world,
                stmts,
                args,
                RunConfig {
                    trace: Some((STORE, 1.0)),
                    ..RunConfig::default()
                },
            )
            .0
        },
    );

    let mut report = Map::new();
    report.insert(
        "experiment".to_owned(),
        Value::String("trace_overhead".to_owned()),
    );
    report.insert("pairs".to_owned(), Value::Array(pairs));
    report.insert(
        "overhead_pct".to_owned(),
        Value::Number(Number::from_f64(overhead_pct).unwrap_or_else(|| Number::from(0u64))),
    );
    report.insert(
        "trace_sample".to_owned(),
        Value::Number(Number::from_f64(1.0).unwrap_or_else(|| Number::from(1u64))),
    );
    report.insert("trace_store".to_owned(), Value::Number(Number::from(STORE)));
    (report, overhead_pct)
}

/// Measure continuous profiling's cost: interleaved off/on run pairs
/// over the same world and statements, telemetry enabled on both sides
/// so the figure isolates profiling. The on side is the full `--prof`
/// configuration — every statement request runs under a profile
/// session with the counting allocator on, its finished tree folds
/// into the global aggregate, and its cost lands in the per-user
/// ledger. Returns the report map and the overhead percentage
/// (smallest per-pair p50 ratio).
fn prof_overhead(world: &ScaledWorld, stmts: &[String], args: &Args) -> (Map<String, Value>, f64) {
    const PAIRS: usize = 5;
    motro_obs::set_enabled(true);
    motro_obs::prof::global().reset();
    motro_obs::prof::ledger().reset();
    let (pairs, overhead_pct) = overhead_pairs(
        "prof",
        PAIRS,
        || {
            // `--prof` leaves counting on after the server drops; switch
            // it back off so the off side measures the true baseline.
            motro_obs::alloc::set_counting(false);
            run(world, stmts, args, RunConfig::default()).0
        },
        || {
            run(
                world,
                stmts,
                args,
                RunConfig {
                    prof: true,
                    ..RunConfig::default()
                },
            )
            .0
        },
    );
    motro_obs::alloc::set_counting(false);

    // The on runs fed the global aggregate and ledger; the experiment
    // measured nothing unless both saw every on-side request.
    let agg = motro_obs::prof::global();
    let expected = (PAIRS * args.clients * args.requests) as u64;
    assert_eq!(
        agg.folds(),
        expected,
        "aggregator saw {} folds, expected {expected}",
        agg.folds()
    );
    let collapsed = agg.collapsed(motro_obs::prof::FlameMetric::SelfNs);
    assert!(
        !collapsed.is_empty(),
        "collapsed-stack output empty after {expected} folds"
    );
    for line in collapsed.lines() {
        let (path, value) = line.rsplit_once(' ').expect("collapsed line grammar");
        assert!(!path.is_empty() && value.parse::<u64>().is_ok(), "{line:?}");
    }
    let charged: u64 = motro_obs::prof::ledger()
        .top(0)
        .iter()
        .map(|(_, c)| c.requests)
        .sum();
    assert_eq!(charged, expected, "ledger charged {charged} requests");
    let ledger_exposition = motro_obs::prof::ledger().prometheus();
    motro_obs::prom::validate(&ledger_exposition).expect("ledger exposition must validate");

    let mut report = Map::new();
    report.insert(
        "experiment".to_owned(),
        Value::String("prof_overhead".to_owned()),
    );
    report.insert("pairs".to_owned(), Value::Array(pairs));
    report.insert(
        "overhead_pct".to_owned(),
        Value::Number(Number::from_f64(overhead_pct).unwrap_or_else(|| Number::from(0u64))),
    );
    report.insert(
        "profiled_requests".to_owned(),
        Value::Number(Number::from(expected)),
    );
    report.insert(
        "stage_paths".to_owned(),
        Value::Number(Number::from(agg.stages().len())),
    );
    report.insert(
        "ledger_users".to_owned(),
        Value::Number(Number::from(motro_obs::prof::ledger().len())),
    );
    (report, overhead_pct)
}

/// Measure the authorization-analytics layer's cost (DESIGN.md §6h):
/// interleaved off/on run pairs, telemetry enabled on both sides so
/// the figure isolates insight recording. The on side is the default
/// server configuration — every retrieval's mask outcome and R2 tally
/// folds into the per-(principal, views, relations) rollups — while
/// the off side runs `--no-insight`. Returns the report map and the
/// overhead percentage (smallest per-pair p50 ratio).
fn insight_overhead(
    world: &ScaledWorld,
    stmts: &[String],
    args: &Args,
) -> (Map<String, Value>, f64) {
    const PAIRS: usize = 5;
    motro_obs::set_enabled(true);
    motro_obs::insight::global().reset();
    let (pairs, overhead_pct) = overhead_pairs(
        "insight",
        PAIRS,
        || run(world, stmts, args, RunConfig::default()).0,
        || {
            run(
                world,
                stmts,
                args,
                RunConfig {
                    insight: true,
                    ..RunConfig::default()
                },
            )
            .0
        },
    );

    // The on runs fed the global rollups; the experiment measured
    // nothing unless every on-side request was recorded.
    let insight = motro_obs::insight::global();
    let expected = (PAIRS * args.clients * args.requests) as u64;
    let recorded: u64 = insight.rollups().iter().map(|(_, r)| r.requests).sum();
    assert_eq!(
        recorded, expected,
        "insight rollups recorded {recorded} requests, expected {expected}"
    );
    assert!(
        !insight.is_empty(),
        "no rollups accumulated after {expected} recorded requests"
    );
    // The rollup view must render as valid JSON — it feeds the
    // `insight` wire reply and `/debug/insight` verbatim.
    let parsed: Value = insight
        .rollups_json()
        .parse()
        .expect("rollups_json must parse as JSON");
    assert!(parsed.as_array().is_some_and(|a| !a.is_empty()));

    let mut report = Map::new();
    report.insert(
        "experiment".to_owned(),
        Value::String("insight_overhead".to_owned()),
    );
    report.insert("pairs".to_owned(), Value::Array(pairs));
    report.insert(
        "overhead_pct".to_owned(),
        Value::Number(Number::from_f64(overhead_pct).unwrap_or_else(|| Number::from(0u64))),
    );
    report.insert(
        "recorded_requests".to_owned(),
        Value::Number(Number::from(recorded)),
    );
    report.insert(
        "rollup_keys".to_owned(),
        Value::Number(Number::from(insight.len())),
    );
    (report, overhead_pct)
}

/// The invalidation-churn experiment (DESIGN.md §6e): warm one cache
/// entry per `(user, query)` pair, then alternate grant churn with
/// retrieval sweeps. Each round flips one view grant on a round-robin
/// victim — a mutation whose touched-set is exactly that user — and
/// checks two things the dependency-tracked cache promises:
///
/// 1. **Retention**: every *other* user's warmed entries survive the
///    mutation (a full flush would drop them all).
/// 2. **Warm-on-write**: after `drain_materializer`, the following
///    sweep is served hot — including the victim, whose dropped
///    entries the background worker recomputed.
///
/// Returns the report and the minimum per-round retention percentage.
fn churn(world: &ScaledWorld, stmts: &[String], args: &Args) -> (Map<String, Value>, f64) {
    let mut fe = Frontend::with_database(world.db.clone());
    *fe.auth_store_mut() = world.store.clone();
    fe.set_exec_config(motro_authz::rel::ExecConfig::with_workers(args.workers));
    // Victims must hold a grant to flip; with grants ≥ 1 that is every
    // user, but guard anyway so tiny worlds degrade to a clear error.
    let victims: Vec<(String, String)> = world
        .users
        .iter()
        .filter_map(|u| {
            world
                .store
                .permitted_views(u)
                .first()
                .map(|v| (u.clone(), (*v).to_owned()))
        })
        .collect();
    assert!(
        !victims.is_empty(),
        "churn needs at least one user holding a grant (--grants >= 1)"
    );
    let journal = args
        .churn_journal
        .as_ref()
        .map(|p| JournalConfig::new(std::path::PathBuf::from(p)));
    let server = Server::bind(
        "127.0.0.1:0",
        SharedFrontend::new(fe),
        ServerConfig {
            workers: args.clients.clamp(1, 8),
            cache_capacity: 1024,
            journal,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    // One persistent session per user; the first doubles as the
    // administrator issuing the churn statements.
    let mut sessions: Vec<Client> = world
        .users
        .iter()
        .map(|u| Client::connect(addr, u).expect("connect"))
        .collect();
    let mut admin = Client::connect(addr, "churn-admin").expect("connect admin");

    // Warm: every user retrieves every statement once, creating
    // users x queries cache entries (all dependency-tagged).
    for session in &mut sessions {
        for stmt in stmts {
            session.retrieve(stmt).expect("warm retrieve");
        }
    }
    let counts = |server: &Server| -> std::collections::HashMap<String, u64> {
        server.cache().user_counts().into_iter().collect()
    };

    let mut rounds = Vec::new();
    let mut min_retention = 100.0f64;
    let mut all_latencies = Vec::new();
    let mut revoked = vec![false; victims.len()];
    let mut prev = server.cache().stats();
    for round in 0..args.churn {
        let slot = round % victims.len();
        let (victim, view) = &victims[slot];
        let stmt = if revoked[slot] {
            format!("permit {view} to {victim}")
        } else {
            format!("revoke {view} from {victim}")
        };
        revoked[slot] = !revoked[slot];

        let pre = counts(&server);
        admin.admin(&stmt).expect("churn admin statement");
        let post = counts(&server);
        // Retention over the users the mutation did NOT touch. The
        // materializer only ever re-adds the victim's entries, so this
        // is race-free even while rewarming runs.
        let (mut held, mut survived) = (0u64, 0u64);
        for (user, had) in &pre {
            if user != victim {
                held += had;
                survived += post.get(user).copied().unwrap_or(0).min(*had);
            }
        }
        let retention = 100.0 * survived as f64 / held.max(1) as f64;
        min_retention = min_retention.min(retention);

        // Let warm-on-write finish, then sweep: with the victim's
        // entries rewarmed, the whole sweep should be served hot.
        server.drain_materializer();
        let mut latencies = Vec::with_capacity(sessions.len() * stmts.len());
        for session in &mut sessions {
            for stmt in stmts {
                let t = Instant::now();
                session.retrieve(stmt).expect("churn retrieve");
                latencies.push(t.elapsed().as_nanos() as u64);
            }
        }
        let now = server.cache().stats();
        let (hits, misses) = (now.hits - prev.hits, now.misses - prev.misses);
        prev = now;
        let mean_us = (mean_ns(&latencies) / 1_000.0) as u64;
        let num = |v: u64| Value::Number(Number::from(v));
        let mut r = Map::new();
        r.insert("round".to_owned(), num(round as u64));
        r.insert("victim".to_owned(), Value::String(victim.clone()));
        r.insert("statement".to_owned(), Value::String(stmt));
        r.insert(
            "retention_pct".to_owned(),
            Value::Number(Number::from_f64(retention).unwrap_or_else(|| Number::from(0u64))),
        );
        r.insert("mean_us".to_owned(), num(mean_us));
        r.insert("sweep_hits".to_owned(), num(hits));
        r.insert("sweep_misses".to_owned(), num(misses));
        rounds.push(Value::Object(r));
        all_latencies.extend(latencies);
    }

    let stats = server.cache().stats();
    let mat = server.materializer_stats();
    let num = |v: u64| Value::Number(Number::from(v));
    let mut cache = Map::new();
    cache.insert(
        "targeted_invalidations".to_owned(),
        num(stats.targeted_invalidations),
    );
    cache.insert(
        "full_invalidations".to_owned(),
        num(stats.full_invalidations),
    );
    cache.insert(
        "entries_invalidated".to_owned(),
        num(stats.entries_invalidated),
    );
    cache.insert("retained_last".to_owned(), num(stats.retained_last));
    cache.insert("epoch_fallbacks".to_owned(), num(stats.epoch_fallbacks));
    cache.insert("dep_index_keys".to_owned(), num(stats.dep_index_keys));
    cache.insert("dep_index_refs".to_owned(), num(stats.dep_index_refs));
    let mut mat_map = Map::new();
    if let Some(m) = mat {
        mat_map.insert("queued".to_owned(), num(m.queued));
        mat_map.insert("refreshed".to_owned(), num(m.done));
        mat_map.insert("dropped".to_owned(), num(m.dropped));
    }

    let mut report = Map::new();
    report.insert(
        "experiment".to_owned(),
        Value::String("invalidation_churn".to_owned()),
    );
    report.insert("rounds_run".to_owned(), num(args.churn as u64));
    report.insert(
        "min_retention_pct".to_owned(),
        Value::Number(Number::from_f64(min_retention).unwrap_or_else(|| Number::from(0u64))),
    );
    report.insert(
        "sweep_mean_us".to_owned(),
        num((mean_ns(&all_latencies) / 1_000.0) as u64),
    );
    report.insert("rounds".to_owned(), Value::Array(rounds));
    report.insert("cache".to_owned(), Value::Object(cache));
    report.insert("materializer".to_owned(), Value::Object(mat_map));
    (report, min_retention)
}

fn main() {
    let args = parse_args();
    let world = ScaledWorld::generate(WorldParams {
        relations: args.relations,
        rows_per_relation: args.rows,
        views: args.views,
        users: args.users,
        grants_per_user: args.grants,
        queries: args.clients.max(1),
        seed: args.seed,
    });
    let stmts: Vec<String> = world.queries.iter().map(|q| q.to_string()).collect();

    eprintln!(
        "loadgen: {} clients x {} requests, world: {} relations x {} rows, {} views, {} users",
        args.clients, args.requests, args.relations, args.rows, args.views, args.users
    );

    let (lat_u, wall_u, hits_u, misses_u) = run(
        &world,
        &stmts,
        &args,
        RunConfig {
            cache_capacity: 0,
            ..RunConfig::default()
        },
    );
    let uncached = summarize(lat_u, wall_u, hits_u, misses_u);
    eprintln!(
        "  uncached: {} req/s, p50 {}us, p99 {}us",
        uncached["throughput_rps"], uncached["p50_us"], uncached["p99_us"]
    );

    let (lat_c, wall_c, hits_c, misses_c) = run(&world, &stmts, &args, RunConfig::default());
    let cached = summarize(lat_c, wall_c, hits_c, misses_c);
    eprintln!(
        "  cached:   {} req/s, p50 {}us, p99 {}us ({} hits / {} misses)",
        cached["throughput_rps"], cached["p50_us"], cached["p99_us"], hits_c, misses_c
    );

    let speedup = mean_of(&uncached) / mean_of(&cached).max(1.0);
    eprintln!("  mean-latency speedup: {speedup:.2}x");

    let mut config = Map::new();
    for (k, v) in [
        ("clients", args.clients),
        ("requests", args.requests),
        ("relations", args.relations),
        ("rows_per_relation", args.rows),
        ("views", args.views),
        ("users", args.users),
        ("grants_per_user", args.grants),
    ] {
        config.insert(k.to_owned(), Value::Number(Number::from(v)));
    }
    config.insert("seed".to_owned(), Value::Number(Number::from(args.seed)));

    let mut report = Map::new();
    report.insert(
        "experiment".to_owned(),
        Value::String("server_cache".to_owned()),
    );
    report.insert("config".to_owned(), Value::Object(config));
    report.insert("uncached".to_owned(), Value::Object(uncached));
    report.insert("cached".to_owned(), Value::Object(cached));
    report.insert(
        "speedup_mean_latency".to_owned(),
        Value::Number(Number::from_f64(speedup).unwrap_or_else(|| Number::from(0u64))),
    );
    let json = Value::Object(report).to_string();
    std::fs::write(&args.out, &json).expect("write report");
    println!("{json}");

    if args.churn > 0 {
        eprintln!("loadgen: invalidation churn, {} rounds", args.churn);
        let (mut report, min_retention) = churn(&world, &stmts, &args);
        let mut config = Map::new();
        for (k, v) in [
            ("rounds", args.churn),
            ("users", args.users),
            ("views", args.views),
            ("grants_per_user", args.grants),
            ("queries", stmts.len()),
        ] {
            config.insert(k.to_owned(), Value::Number(Number::from(v)));
        }
        config.insert("seed".to_owned(), Value::Number(Number::from(args.seed)));
        report.insert("config".to_owned(), Value::Object(config));
        if let Some(b) = args.assert_retention {
            report.insert(
                "bound_pct".to_owned(),
                Value::Number(Number::from_f64(b).unwrap_or_else(|| Number::from(0u64))),
            );
        }
        let json = Value::Object(report).to_string();
        std::fs::write(&args.churn_out, &json).expect("write churn report");
        eprintln!(
            "  churn: min unaffected retention {min_retention:.1}% (report: {})",
            args.churn_out
        );
        if let Some(b) = args.assert_retention {
            if min_retention < b {
                eprintln!("loadgen: retention {min_retention:.1}% below bound {b}%");
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = &args.obs_report {
        eprintln!("loadgen: measuring observability overhead");
        let (report, overhead_pct) = obs_overhead(&world, &stmts, &args);
        write_overhead_report("obs", path, report, overhead_pct, args.assert_overhead);
    }

    if let Some(path) = &args.trace_report {
        eprintln!("loadgen: measuring tracing overhead (sample 1.0)");
        let (report, overhead_pct) = trace_overhead(&world, &stmts, &args);
        write_overhead_report(
            "trace",
            path,
            report,
            overhead_pct,
            args.assert_trace_overhead,
        );
    }

    if let Some(path) = &args.prof_report {
        eprintln!("loadgen: measuring continuous-profiling overhead");
        let (report, overhead_pct) = prof_overhead(&world, &stmts, &args);
        write_overhead_report(
            "prof",
            path,
            report,
            overhead_pct,
            args.assert_prof_overhead,
        );
    }

    if let Some(path) = &args.insight_report {
        eprintln!("loadgen: measuring authorization-analytics overhead");
        let (report, overhead_pct) = insight_overhead(&world, &stmts, &args);
        write_overhead_report(
            "insight",
            path,
            report,
            overhead_pct,
            args.assert_insight_overhead,
        );
    }
}

/// Finish one overhead experiment: stamp the CI bound into the report,
/// write it, and exit non-zero when the measured overhead exceeds the
/// bound — the shared tail of every `--*-report` flag.
fn write_overhead_report(
    label: &str,
    path: &str,
    mut report: Map<String, Value>,
    overhead_pct: f64,
    bound: Option<f64>,
) {
    if let Some(b) = bound {
        report.insert(
            "bound_pct".to_owned(),
            Value::Number(Number::from_f64(b).unwrap_or_else(|| Number::from(0u64))),
        );
    }
    let json = Value::Object(report).to_string();
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {label} report {path}: {e}"));
    eprintln!("  {label} overhead: {overhead_pct:.2}% (report: {path})");
    if let Some(b) = bound {
        if overhead_pct > b {
            eprintln!("loadgen: {label} overhead {overhead_pct:.2}% exceeds bound {b}%");
            std::process::exit(1);
        }
    }
}
