//! # motro-bench
//!
//! Synthetic workload generation and the experiment harness for the
//! reproduction. Every table in `EXPERIMENTS.md` is produced either by
//! the `report` binary (qualitative reproductions and the utility
//! table) or by the Criterion benchmarks in `benches/` (timing).

#![warn(missing_docs)]

pub mod util;
pub mod workload;

pub use util::{
    ablation_configs, ablation_table, render_ablation_table, render_utility_table, utility_table,
    AblationRow, ModelScore, UtilityRow, WorkloadClass,
};
pub use workload::{ScaledWorld, WorldParams};
