//! Seeded synthetic worlds for the scaling benchmarks.
//!
//! The paper has no workload of its own (it predates evaluation-section
//! benchmarking), so the harness generates parameterized worlds in the
//! shape its examples suggest: a chain of relations
//! `R0(K, F, C, V) … Rn(…)` where `K` is a string key, `F` a foreign
//! key into the previous relation, `C` a low-cardinality category, and
//! `V` an integer measure. Views are conjunctive, follow the paper's
//! recommended shape (selection attributes among the projection
//! attributes), and mix single-relation column/row subsets with
//! two-relation joins; queries do the same.

use motro_core::AuthStore;
use motro_rel::{tuple, CompOp, Database, DbSchema, Domain, Value};
use motro_views::{AttrRef, ConjunctiveQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Categories for the `C` attribute.
pub const CATEGORIES: [&str; 6] = ["red", "green", "blue", "cyan", "amber", "teal"];

/// Parameters of a generated world.
#[derive(Debug, Clone, Copy)]
pub struct WorldParams {
    /// Number of base relations (chained by foreign keys).
    pub relations: usize,
    /// Rows per relation.
    pub rows_per_relation: usize,
    /// Number of views to define.
    pub views: usize,
    /// Number of users; views are granted round-robin.
    pub users: usize,
    /// Grants per user.
    pub grants_per_user: usize,
    /// Number of sample queries.
    pub queries: usize,
    /// RNG seed (worlds are fully deterministic given the parameters).
    pub seed: u64,
}

impl Default for WorldParams {
    fn default() -> Self {
        WorldParams {
            relations: 3,
            rows_per_relation: 100,
            views: 16,
            users: 4,
            grants_per_user: 4,
            queries: 16,
            seed: 42,
        }
    }
}

/// A generated world: data, authorization state, and a query sample.
pub struct ScaledWorld {
    /// The database instance.
    pub db: Database,
    /// The authorization store with views and grants installed.
    pub store: AuthStore,
    /// User names (`u0`, `u1`, …).
    pub users: Vec<String>,
    /// Sample queries.
    pub queries: Vec<ConjunctiveQuery>,
}

/// Name of relation `i`.
pub fn rel_name(i: usize) -> String {
    format!("R{i}")
}

/// The chained scheme for `n` relations.
pub fn chained_scheme(n: usize) -> DbSchema {
    let mut s = DbSchema::new();
    for i in 0..n {
        s.add_relation_with_key(
            &rel_name(i),
            &[
                ("K", Domain::Str),
                ("F", Domain::Str),
                ("C", Domain::Str),
                ("V", Domain::Int),
            ],
            Some(&["K"]),
        )
        .expect("generated names are distinct");
    }
    s
}

fn key_of(rel: usize, row: usize) -> String {
    format!("r{rel}-{row}")
}

impl ScaledWorld {
    /// Generate a world. Data, views, and queries draw from independent
    /// RNG streams, so sweeping one dimension (e.g. rows per relation)
    /// holds the others fixed.
    pub fn generate(p: WorldParams) -> ScaledWorld {
        let mut rng = StdRng::seed_from_u64(p.seed);
        let mut view_rng = StdRng::seed_from_u64(p.seed.wrapping_add(0x9E3779B9));
        let mut query_rng = StdRng::seed_from_u64(p.seed.wrapping_add(0x2545F491));
        let scheme = chained_scheme(p.relations);
        let mut db = Database::new(scheme.clone());
        for r in 0..p.relations {
            let name = rel_name(r);
            for row in 0..p.rows_per_relation {
                let fk = if r == 0 {
                    "-".to_owned()
                } else {
                    key_of(r - 1, rng.gen_range(0..p.rows_per_relation))
                };
                let cat = CATEGORIES[rng.gen_range(0..CATEGORIES.len())];
                let v: i64 = rng.gen_range(0..1_000_000);
                db.insert(&name, tuple![key_of(r, row), fk, cat, v])
                    .expect("generated rows are well-typed");
            }
        }

        let mut store = AuthStore::new(scheme);
        let mut defined = Vec::new();
        let mut vi = 0usize;
        while defined.len() < p.views {
            let name = format!("W{vi}");
            vi += 1;
            let v = random_view(&mut view_rng, p.relations, Some(&name));
            if store.define_view(&v).is_ok() {
                defined.push(name);
            }
        }

        let users: Vec<String> = (0..p.users).map(|u| format!("u{u}")).collect();
        for (u, user) in users.iter().enumerate() {
            for g in 0..p.grants_per_user.min(defined.len()) {
                let v = &defined[(u + g * p.users) % defined.len()];
                store.permit(v, user).expect("defined above");
            }
        }

        let queries = (0..p.queries)
            .map(|_| random_view(&mut query_rng, p.relations, None))
            .collect();

        ScaledWorld {
            db,
            store,
            users,
            queries,
        }
    }
}

/// A random conjunctive statement over the chained scheme: 60%
/// single-relation, 40% a two-relation foreign-key join; selection
/// attributes are kept among the targets (the paper's recommendation).
pub fn random_view(rng: &mut StdRng, relations: usize, name: Option<&str>) -> ConjunctiveQuery {
    let two = relations >= 2 && rng.gen_bool(0.4);
    let base = if two {
        rng.gen_range(1..relations)
    } else {
        rng.gen_range(0..relations)
    };
    let rel = rel_name(base);
    let mut q = ConjunctiveQuery {
        name: name.map(str::to_owned),
        targets: vec![AttrRef::new(&rel, "K")],
        atoms: vec![],
    };
    if rng.gen_bool(0.7) {
        q.targets.push(AttrRef::new(&rel, "C"));
    }
    if rng.gen_bool(0.7) {
        q.targets.push(AttrRef::new(&rel, "V"));
    }
    // Row restriction on C or V (selection attrs stay projected).
    if rng.gen_bool(0.5) {
        let cat = CATEGORIES[rng.gen_range(0..CATEGORIES.len())];
        if !q.targets.iter().any(|t| t.attr == "C") {
            q.targets.push(AttrRef::new(&rel, "C"));
        }
        q.atoms.push(motro_views::CalcAtom {
            lhs: AttrRef::new(&rel, "C"),
            op: CompOp::Eq,
            rhs: motro_views::CalcTerm::Const(Value::str(cat)),
        });
    }
    if rng.gen_bool(0.5) {
        let bound: i64 = rng.gen_range(100_000..900_000);
        let op = if rng.gen_bool(0.5) {
            CompOp::Le
        } else {
            CompOp::Ge
        };
        if !q.targets.iter().any(|t| t.attr == "V") {
            q.targets.push(AttrRef::new(&rel, "V"));
        }
        q.atoms.push(motro_views::CalcAtom {
            lhs: AttrRef::new(&rel, "V"),
            op,
            rhs: motro_views::CalcTerm::Const(Value::int(bound)),
        });
    }
    if two {
        // Join to the parent relation through F.
        let parent = rel_name(base - 1);
        q.targets.push(AttrRef::new(&rel, "F"));
        q.targets.push(AttrRef::new(&parent, "K"));
        if rng.gen_bool(0.5) {
            q.targets.push(AttrRef::new(&parent, "C"));
        }
        q.atoms.push(motro_views::CalcAtom {
            lhs: AttrRef::new(&rel, "F"),
            op: CompOp::Eq,
            rhs: motro_views::CalcTerm::Attr(AttrRef::new(&parent, "K")),
        });
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use motro_core::AuthorizedEngine;

    #[test]
    fn generation_is_deterministic() {
        let a = ScaledWorld::generate(WorldParams::default());
        let b = ScaledWorld::generate(WorldParams::default());
        assert_eq!(a.db.total_tuples(), b.db.total_tuples());
        assert_eq!(a.store.view_names(), b.store.view_names());
        assert_eq!(a.queries.len(), b.queries.len());
        assert_eq!(format!("{:?}", a.queries), format!("{:?}", b.queries));
    }

    #[test]
    fn world_dimensions_match_params() {
        let p = WorldParams {
            relations: 4,
            rows_per_relation: 10,
            views: 8,
            users: 2,
            grants_per_user: 3,
            queries: 5,
            seed: 7,
        };
        let w = ScaledWorld::generate(p);
        assert_eq!(w.db.total_tuples(), 40);
        assert_eq!(w.store.view_names().len(), 8);
        assert_eq!(w.users.len(), 2);
        assert_eq!(w.store.permitted_views("u0").len(), 3);
        assert_eq!(w.queries.len(), 5);
    }

    #[test]
    fn views_are_stable_across_data_sizes() {
        let mk = |rows| {
            ScaledWorld::generate(WorldParams {
                rows_per_relation: rows,
                ..WorldParams::default()
            })
        };
        let a = mk(10);
        let b = mk(1000);
        assert_eq!(a.store.total_meta_tuples(), b.store.total_meta_tuples());
        assert_eq!(
            a.store.meta_table("R1", None).unwrap(),
            b.store.meta_table("R1", None).unwrap()
        );
        assert_eq!(format!("{:?}", a.queries), format!("{:?}", b.queries));
    }

    #[test]
    fn generated_queries_execute_under_authorization() {
        let w = ScaledWorld::generate(WorldParams {
            rows_per_relation: 20,
            ..WorldParams::default()
        });
        let engine = AuthorizedEngine::new(&w.db, &w.store);
        for q in &w.queries {
            for u in &w.users {
                let out = engine.retrieve(u, q).expect("generated queries compile");
                // Sanity: delivered rows never exceed the raw answer.
                assert!(out.masked.len() <= out.answer.len());
            }
        }
    }
}
